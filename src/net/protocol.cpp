#include "net/protocol.hpp"

#include <cstring>
#include <sstream>

namespace parma::net {

namespace {

// --- Little-endian primitives ---------------------------------------------
//
// Explicit byte order keeps the wire format host-independent; on the
// little-endian targets we build for these compile down to plain loads and
// stores.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, Real v) {
  static_assert(sizeof(Real) == 8, "wire format assumes binary64 Real");
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked sequential reader over one frame body. Reads past the end
/// set `truncated` instead of touching memory, so a decoder can finish its
/// field list and report one typed error.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool truncated = false;

  bool need(std::size_t n) {
    if (size - pos < n) {
      truncated = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                      static_cast<std::uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  Real f64() {
    const std::uint64_t bits = u64();
    Real v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool bytes(std::uint8_t* out, std::size_t n) {
    if (!need(n)) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool f64_array(std::vector<Real>& out, std::size_t n) {
    if (!need(n * 8)) return false;
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = f64();
    return true;
  }
};

ProtocolError fail(ProtoCode code, const std::string& message) {
  return ProtocolError{code, message};
}

ProtocolError truncated(const char* what) {
  return fail(ProtoCode::kTruncatedBody, std::string("body ended inside ") + what);
}

// Request-body flag bits. Unknown bits are rejected -- a frame from a future
// peer that needs new semantics must bump the version instead of smuggling
// bits past an old server.
constexpr std::uint8_t kFlagHasMask = 0x01;
constexpr std::uint8_t kFlagAutoMask = 0x02;
constexpr std::uint8_t kFlagAnomalyThreshold = 0x04;
constexpr std::uint8_t kKnownRequestFlags =
    kFlagHasMask | kFlagAutoMask | kFlagAnomalyThreshold;

// Response-body flag bits.
constexpr std::uint8_t kFlagHasField = 0x01;

void put_header(std::vector<std::uint8_t>& out, FrameType type,
                std::uint64_t request_id, std::uint32_t body_len) {
  put_u32(out, kMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, request_id);
  put_u32(out, body_len);
  // body_sum: the empty-body checksum up front, so header-only frames
  // (ping/pong) are complete as written; bodied frames re-patch at the end.
  put_u32(out, body_checksum(nullptr, 0));
}

/// Patches body_len (offset 16) and body_sum (offset 20) once the body is
/// serialized.
void patch_body_len(std::vector<std::uint8_t>& out) {
  const auto body_len = static_cast<std::uint32_t>(out.size() - kHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    out[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  patch_body_checksum(out);
}

}  // namespace

std::uint32_t body_checksum(const std::uint8_t* data, std::size_t size) {
  // FNV-1a 32-bit.
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void patch_body_checksum(std::vector<std::uint8_t>& frame) {
  PARMA_REQUIRE(frame.size() >= kHeaderBytes, "frame shorter than its header");
  const std::uint32_t sum =
      body_checksum(frame.data() + kHeaderBytes, frame.size() - kHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    frame[20 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

const char* proto_code_name(ProtoCode code) {
  switch (code) {
    case ProtoCode::kOk: return "ok";
    case ProtoCode::kBadMagic: return "bad-magic";
    case ProtoCode::kBadVersion: return "bad-version";
    case ProtoCode::kBadFrameType: return "bad-frame-type";
    case ProtoCode::kBodyTooLarge: return "body-too-large";
    case ProtoCode::kBodyShapeMismatch: return "body-shape-mismatch";
    case ProtoCode::kBadEnum: return "bad-enum";
    case ProtoCode::kBadShape: return "bad-shape";
    case ProtoCode::kTruncatedBody: return "truncated-body";
    case ProtoCode::kBadChecksum: return "bad-checksum";
    case ProtoCode::kServerBusy: return "server-busy";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// serve-layer conversions.

serve::ParametrizeRequest WireRequest::to_request() const {
  serve::ParametrizeRequest r;
  r.measurement.spec.rows = static_cast<Index>(rows);
  r.measurement.spec.cols = static_cast<Index>(cols);
  r.measurement.spec.drive_voltage = drive_voltage;
  r.measurement.z = linalg::DenseMatrix(static_cast<Index>(rows), static_cast<Index>(cols));
  r.measurement.u = linalg::DenseMatrix(static_cast<Index>(rows), static_cast<Index>(cols));
  r.measurement.z.data() = z;
  r.measurement.u.data() = u;
  if (!mask.empty()) {
    mea::MeasurementMask m(static_cast<Index>(rows), static_cast<Index>(cols));
    m.bits = mask;
    r.measurement.mask = std::move(m);
  }
  r.options.strategy = static_cast<core::Strategy>(strategy);
  if (form_workers > 0) r.options.workers = static_cast<Index>(form_workers);
  if (form_chunk > 0) r.options.chunk = static_cast<Index>(form_chunk);
  // The response never carries the equation system back, so serving always
  // streams it (bounded resident memory per request).
  r.options.keep_system = false;
  if (max_iterations > 0) {
    r.inverse.max_iterations = static_cast<Index>(max_iterations);
    r.full_system.max_iterations = static_cast<Index>(max_iterations);
  }
  r.solve_method = solve_method == 1 ? serve::SolveMethod::kFullSystem
                                     : serve::SolveMethod::kLevenbergMarquardt;
  r.priority = static_cast<serve::Priority>(priority);
  r.auto_mask_invalid = auto_mask_invalid;
  if (deadline_ms > 0) r.timeout = std::chrono::milliseconds(deadline_ms);
  if (anomaly_threshold) r.anomaly_threshold = *anomaly_threshold;
  return r;
}

WireRequest WireRequest::from_request(const serve::ParametrizeRequest& request,
                                      std::uint64_t request_id) {
  WireRequest w;
  w.request_id = request_id;
  w.priority = static_cast<std::uint8_t>(request.priority);
  w.solve_method = request.solve_method == serve::SolveMethod::kFullSystem ? 1 : 0;
  w.strategy = static_cast<std::uint8_t>(request.options.strategy);
  w.auto_mask_invalid = request.auto_mask_invalid;
  if (request.timeout) {
    w.deadline_ms = static_cast<std::uint32_t>(request.timeout->count());
  }
  w.form_workers = static_cast<std::uint16_t>(request.options.workers);
  w.form_chunk = static_cast<std::uint16_t>(request.options.chunk);
  w.max_iterations = static_cast<std::uint16_t>(
      request.solve_method == serve::SolveMethod::kFullSystem
          ? request.full_system.max_iterations
          : request.inverse.max_iterations);
  w.rows = static_cast<std::uint32_t>(request.measurement.spec.rows);
  w.cols = static_cast<std::uint32_t>(request.measurement.spec.cols);
  w.drive_voltage = request.measurement.spec.drive_voltage;
  w.anomaly_threshold = request.anomaly_threshold;
  w.z = request.measurement.z.data();
  w.u = request.measurement.u.data();
  if (request.measurement.mask && !request.measurement.mask->all_valid()) {
    w.mask = request.measurement.mask->bits;
  }
  return w;
}

circuit::ResistanceGrid WireResponse::recovered_grid() const {
  PARMA_REQUIRE(has_field(), "response carries no recovered field");
  circuit::ResistanceGrid grid(static_cast<Index>(rows), static_cast<Index>(cols));
  grid.flat() = field;
  return grid;
}

WireResponse WireResponse::from_result(std::uint64_t request_id,
                                       const serve::ParametrizeResult& result) {
  WireResponse w;
  w.request_id = request_id;
  w.status_code = serve::status_wire_code(result.status);
  w.converged = result.inverse.converged;
  w.attempts = static_cast<std::uint16_t>(result.attempts);
  w.iterations = static_cast<std::uint32_t>(result.inverse.iterations);
  w.anomalies = static_cast<std::uint32_t>(result.anomalies);
  w.final_misfit = result.inverse.final_misfit;
  w.queue_seconds = result.queue_seconds;
  w.form_seconds = result.form_seconds;
  w.solve_seconds = result.solve_seconds;
  w.reconstruct_seconds = result.reconstruct_seconds;
  w.message = result.message;
  if (result.has_result()) {
    const auto& grid = result.inverse.recovered;
    w.rows = static_cast<std::uint32_t>(grid.rows());
    w.cols = static_cast<std::uint32_t>(grid.cols());
    w.field = grid.flat();
  }
  return w;
}

// ---------------------------------------------------------------------------
// Encoding.

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  std::vector<std::uint8_t> out;
  const std::size_t cells =
      static_cast<std::size_t>(request.rows) * static_cast<std::size_t>(request.cols);
  out.reserve(kHeaderBytes + 40 + cells * 16 + request.mask.size());
  put_header(out, FrameType::kRequest, request.request_id, 0);
  out.push_back(request.priority);
  out.push_back(request.solve_method);
  out.push_back(request.strategy);
  std::uint8_t flags = 0;
  if (!request.mask.empty()) flags |= kFlagHasMask;
  if (request.auto_mask_invalid) flags |= kFlagAutoMask;
  if (request.anomaly_threshold) flags |= kFlagAnomalyThreshold;
  out.push_back(flags);
  put_u32(out, request.deadline_ms);
  put_u16(out, request.form_workers);
  put_u16(out, request.form_chunk);
  put_u16(out, request.max_iterations);
  put_u16(out, 0);  // reserved
  put_u32(out, request.rows);
  put_u32(out, request.cols);
  put_f64(out, request.drive_voltage);
  put_f64(out, request.anomaly_threshold.value_or(0.0));
  for (const Real v : request.z) put_f64(out, v);
  for (const Real v : request.u) put_f64(out, v);
  out.insert(out.end(), request.mask.begin(), request.mask.end());
  patch_body_len(out);
  return out;
}

std::vector<std::uint8_t> encode_response(const WireResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + 68 + response.message.size() + response.field.size() * 8);
  put_header(out, FrameType::kResponse, response.request_id, 0);
  put_u16(out, response.status_code);
  out.push_back(response.field.empty() ? 0 : kFlagHasField);
  out.push_back(response.converged ? 1 : 0);
  put_u16(out, response.attempts);
  put_u16(out, 0);  // reserved
  put_u32(out, response.iterations);
  put_u32(out, response.anomalies);
  put_u32(out, response.rows);
  put_u32(out, response.cols);
  put_f64(out, response.final_misfit);
  put_f64(out, response.queue_seconds);
  put_f64(out, response.form_seconds);
  put_f64(out, response.solve_seconds);
  put_f64(out, response.reconstruct_seconds);
  put_u32(out, static_cast<std::uint32_t>(response.message.size()));
  out.insert(out.end(), response.message.begin(), response.message.end());
  for (const Real v : response.field) put_f64(out, v);
  patch_body_len(out);
  return out;
}

std::vector<std::uint8_t> encode_error(const WireError& error) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + 8 + error.message.size());
  put_header(out, FrameType::kError, error.request_id, 0);
  put_u16(out, static_cast<std::uint16_t>(error.code));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(error.message.size()));
  out.insert(out.end(), error.message.begin(), error.message.end());
  patch_body_len(out);
  return out;
}

std::vector<std::uint8_t> encode_ping(std::uint64_t request_id) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  put_header(out, FrameType::kPing, request_id, 0);
  return out;
}

std::vector<std::uint8_t> encode_pong(std::uint64_t request_id) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  put_header(out, FrameType::kPong, request_id, 0);
  return out;
}

namespace {

/// The stats body is the merge substrate only: 33 u64 counters/gauges, one
/// degraded byte, then 42 u64s (40 buckets + total/max nanos) per stage.
/// Derived summaries are recomputed on decode. Order is load-bearing --
/// encode and decode walk the same list.
constexpr std::size_t kStatsCounters = 33;
constexpr std::size_t kStatsStages = 5;
constexpr std::size_t kStatsBodyBytes =
    kStatsCounters * 8 + 1 + kStatsStages * (serve::StageStats::kBuckets + 2) * 8;

void put_stage(std::vector<std::uint8_t>& out, const serve::StageStats& stage) {
  for (const std::uint64_t b : stage.buckets) put_u64(out, b);
  put_u64(out, stage.total_nanos);
  put_u64(out, stage.max_nanos);
}

void read_stage(Reader& r, serve::StageStats& stage) {
  for (std::uint64_t& b : stage.buckets) b = r.u64();
  stage.total_nanos = r.u64();
  stage.max_nanos = r.u64();
  stage.recompute();
}

}  // namespace

std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  put_header(out, FrameType::kStatsRequest, request_id, 0);
  return out;
}

std::vector<std::uint8_t> encode_stats_response(std::uint64_t request_id,
                                                const serve::Stats& stats) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kStatsBodyBytes);
  put_header(out, FrameType::kStatsResponse, request_id, 0);
  put_u64(out, stats.submitted);
  put_u64(out, stats.accepted);
  put_u64(out, stats.rejected_queue_full);
  put_u64(out, stats.rejected_shutting_down);
  put_u64(out, stats.rejected_invalid);
  put_u64(out, stats.rejected_load_shed);
  put_u64(out, stats.completed_ok);
  put_u64(out, stats.deadline_exceeded);
  put_u64(out, stats.cancelled);
  put_u64(out, stats.solver_failed);
  put_u64(out, stats.invalid_input);
  put_u64(out, stats.breaker_open);
  put_u64(out, stats.degraded_results);
  put_u64(out, stats.retries);
  put_u64(out, stats.retry_successes);
  put_u64(out, stats.breaker_opened_events);
  put_u64(out, stats.degraded_entered);
  put_u64(out, stats.solver_not_converged);
  put_u64(out, stats.solver_iterations);
  put_u64(out, stats.cg_iterations);
  put_u64(out, stats.fallback_tikhonov);
  put_u64(out, stats.fallback_dense);
  put_u64(out, stats.masked_entries);
  put_u64(out, stats.auto_masked_entries);
  put_u64(out, stats.outliers_downweighted);
  put_u64(out, stats.numerical_breakdowns);
  put_u64(out, stats.symbolic_cache_hits);
  put_u64(out, stats.symbolic_cache_misses);
  put_u64(out, stats.batches);
  put_u64(out, stats.batched_requests);
  put_u64(out, stats.max_batch);
  put_u64(out, static_cast<std::uint64_t>(stats.breaker_open_shapes));
  put_u64(out, static_cast<std::uint64_t>(stats.queue_high_water));
  out.push_back(stats.degraded ? 1 : 0);
  put_stage(out, stats.queue_wait);
  put_stage(out, stats.form);
  put_stage(out, stats.solve);
  put_stage(out, stats.reconstruct);
  put_stage(out, stats.end_to_end);
  patch_body_len(out);
  return out;
}

// ---------------------------------------------------------------------------
// Decoding.

ProtocolError decode_header(const std::uint8_t* data, std::size_t size,
                            std::uint32_t max_body_bytes, FrameHeader& out) {
  PARMA_ASSERT(size >= kHeaderBytes);
  Reader r{data, size};
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    std::ostringstream os;
    os << "bad magic 0x" << std::hex << magic;
    return fail(ProtoCode::kBadMagic, os.str());
  }
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion) {
    std::ostringstream os;
    os << "protocol version " << version << ", this peer speaks " << kProtocolVersion;
    return fail(ProtoCode::kBadVersion, os.str());
  }
  const std::uint16_t type = r.u16();
  out.request_id = r.u64();
  out.body_len = r.u32();
  out.body_sum = r.u32();
  if (type < static_cast<std::uint16_t>(FrameType::kRequest) ||
      type > static_cast<std::uint16_t>(FrameType::kStatsResponse)) {
    std::ostringstream os;
    os << "unknown frame type " << type;
    return fail(ProtoCode::kBadFrameType, os.str());
  }
  out.type = static_cast<FrameType>(type);
  if ((out.type == FrameType::kPing || out.type == FrameType::kPong ||
       out.type == FrameType::kStatsRequest) &&
      out.body_len != 0) {
    return fail(ProtoCode::kBodyShapeMismatch, "header-only frames carry no body");
  }
  if (out.body_len > max_body_bytes) {
    std::ostringstream os;
    os << "declared body of " << out.body_len << " bytes exceeds the " << max_body_bytes
       << "-byte cap";
    return fail(ProtoCode::kBodyTooLarge, os.str());
  }
  return {};
}

ProtocolError decode_request_body(const std::uint8_t* data, std::size_t size,
                                  WireRequest& out) {
  Reader r{data, size};
  out.priority = r.u8();
  out.solve_method = r.u8();
  out.strategy = r.u8();
  const std::uint8_t flags = r.u8();
  out.deadline_ms = r.u32();
  out.form_workers = r.u16();
  out.form_chunk = r.u16();
  out.max_iterations = r.u16();
  (void)r.u16();  // reserved
  out.rows = r.u32();
  out.cols = r.u32();
  out.drive_voltage = r.f64();
  const Real threshold = r.f64();
  if (r.truncated) return truncated("the request fixed header");

  if (out.priority > 2) return fail(ProtoCode::kBadEnum, "priority out of range");
  if (out.solve_method > 1) return fail(ProtoCode::kBadEnum, "solve_method out of range");
  if (out.strategy > 3) return fail(ProtoCode::kBadEnum, "strategy out of range");
  if ((flags & ~kKnownRequestFlags) != 0) {
    return fail(ProtoCode::kBadEnum, "unknown request flag bits");
  }
  out.auto_mask_invalid = (flags & kFlagAutoMask) != 0;
  if ((flags & kFlagAnomalyThreshold) != 0) out.anomaly_threshold = threshold;

  if (out.rows < 2 || out.rows > kMaxWireDim || out.cols < 2 || out.cols > kMaxWireDim) {
    std::ostringstream os;
    os << "shape " << out.rows << " x " << out.cols << " outside [2, " << kMaxWireDim
       << "]";
    return fail(ProtoCode::kBadShape, os.str());
  }
  const std::size_t cells =
      static_cast<std::size_t>(out.rows) * static_cast<std::size_t>(out.cols);
  const bool has_mask = (flags & kFlagHasMask) != 0;
  const std::size_t expected = r.pos + cells * 16 + (has_mask ? cells : 0);
  if (size != expected) {
    std::ostringstream os;
    os << "body of " << size << " bytes, but a " << out.rows << " x " << out.cols
       << (has_mask ? " masked" : "") << " request needs exactly " << expected;
    return fail(ProtoCode::kBodyShapeMismatch, os.str());
  }
  (void)r.f64_array(out.z, cells);
  (void)r.f64_array(out.u, cells);
  if (has_mask) {
    out.mask.resize(cells);
    (void)r.bytes(out.mask.data(), cells);
  } else {
    out.mask.clear();
  }
  PARMA_ASSERT(!r.truncated);  // the exact-size check above covers every read
  return {};
}

ProtocolError decode_response_body(const std::uint8_t* data, std::size_t size,
                                   WireResponse& out) {
  Reader r{data, size};
  out.status_code = r.u16();
  const std::uint8_t flags = r.u8();
  out.converged = r.u8() != 0;
  out.attempts = r.u16();
  (void)r.u16();  // reserved
  out.iterations = r.u32();
  out.anomalies = r.u32();
  out.rows = r.u32();
  out.cols = r.u32();
  out.final_misfit = r.f64();
  out.queue_seconds = r.f64();
  out.form_seconds = r.f64();
  out.solve_seconds = r.f64();
  out.reconstruct_seconds = r.f64();
  const std::uint32_t message_len = r.u32();
  if (r.truncated) return truncated("the response fixed header");
  if ((flags & ~kFlagHasField) != 0) {
    return fail(ProtoCode::kBadEnum, "unknown response flag bits");
  }
  const bool has_field = (flags & kFlagHasField) != 0;
  std::size_t cells = 0;
  if (has_field) {
    if (out.rows < 1 || out.rows > kMaxWireDim || out.cols < 1 || out.cols > kMaxWireDim) {
      return fail(ProtoCode::kBadShape, "response field shape out of range");
    }
    cells = static_cast<std::size_t>(out.rows) * static_cast<std::size_t>(out.cols);
  }
  const std::size_t expected = r.pos + message_len + cells * 8;
  if (size != expected) {
    std::ostringstream os;
    os << "body of " << size << " bytes, but the response declares " << expected;
    return fail(ProtoCode::kBodyShapeMismatch, os.str());
  }
  out.message.assign(reinterpret_cast<const char*>(data + r.pos), message_len);
  r.pos += message_len;
  if (has_field) {
    (void)r.f64_array(out.field, cells);
  } else {
    out.field.clear();
  }
  return {};
}

ProtocolError decode_error_body(const std::uint8_t* data, std::size_t size,
                                WireError& out) {
  Reader r{data, size};
  const std::uint16_t code = r.u16();
  (void)r.u16();  // reserved
  const std::uint32_t message_len = r.u32();
  if (r.truncated) return truncated("the error fixed header");
  if (size != r.pos + message_len) {
    return fail(ProtoCode::kBodyShapeMismatch, "error body length mismatch");
  }
  if (code > static_cast<std::uint16_t>(ProtoCode::kServerBusy)) {
    return fail(ProtoCode::kBadEnum, "unknown protocol error code");
  }
  out.code = static_cast<ProtoCode>(code);
  out.message.assign(reinterpret_cast<const char*>(data + r.pos), message_len);
  return {};
}

ProtocolError decode_stats_body(const std::uint8_t* data, std::size_t size,
                                serve::Stats& out) {
  if (size != kStatsBodyBytes) {
    std::ostringstream os;
    os << "stats body of " << size << " bytes, expected " << kStatsBodyBytes;
    return fail(ProtoCode::kBodyShapeMismatch, os.str());
  }
  Reader r{data, size};
  out = serve::Stats{};
  out.submitted = r.u64();
  out.accepted = r.u64();
  out.rejected_queue_full = r.u64();
  out.rejected_shutting_down = r.u64();
  out.rejected_invalid = r.u64();
  out.rejected_load_shed = r.u64();
  out.completed_ok = r.u64();
  out.deadline_exceeded = r.u64();
  out.cancelled = r.u64();
  out.solver_failed = r.u64();
  out.invalid_input = r.u64();
  out.breaker_open = r.u64();
  out.degraded_results = r.u64();
  out.retries = r.u64();
  out.retry_successes = r.u64();
  out.breaker_opened_events = r.u64();
  out.degraded_entered = r.u64();
  out.solver_not_converged = r.u64();
  out.solver_iterations = r.u64();
  out.cg_iterations = r.u64();
  out.fallback_tikhonov = r.u64();
  out.fallback_dense = r.u64();
  out.masked_entries = r.u64();
  out.auto_masked_entries = r.u64();
  out.outliers_downweighted = r.u64();
  out.numerical_breakdowns = r.u64();
  out.symbolic_cache_hits = r.u64();
  out.symbolic_cache_misses = r.u64();
  out.batches = r.u64();
  out.batched_requests = r.u64();
  out.max_batch = r.u64();
  out.breaker_open_shapes = static_cast<std::size_t>(r.u64());
  out.queue_high_water = static_cast<std::size_t>(r.u64());
  out.degraded = r.u8() != 0;
  read_stage(r, out.queue_wait);
  read_stage(r, out.form);
  read_stage(r, out.solve);
  read_stage(r, out.reconstruct);
  read_stage(r, out.end_to_end);
  PARMA_ASSERT(!r.truncated);  // the exact-size check above covers every read
  out.mean_batch_size = (out.batches > 0)
      ? static_cast<Real>(out.batched_requests) / static_cast<Real>(out.batches)
      : 0.0;
  return {};
}

// ---------------------------------------------------------------------------
// FrameDecoder.

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameDecoder::Result FrameDecoder::next(Frame& frame) {
  if (!error_.ok()) return Result::kError;

  if (!pending_) {
    if (buffer_.size() - consumed_ < kHeaderBytes) return Result::kNeedMore;
    FrameHeader header;
    // The header is judged the moment its 24 bytes exist: a hostile length
    // prefix dies here, before any buffer grows toward body_len.
    error_ = decode_header(buffer_.data() + consumed_, kHeaderBytes, max_body_bytes_,
                           header);
    if (!error_.ok()) {
      // The id is only trustworthy once magic+version checked out.
      error_request_id_ = (error_.code == ProtoCode::kBadMagic ||
                           error_.code == ProtoCode::kBadVersion)
                              ? 0
                              : header.request_id;
      return Result::kError;
    }
    consumed_ += kHeaderBytes;
    pending_ = header;
  }

  if (buffer_.size() - consumed_ < pending_->body_len) return Result::kNeedMore;

  const std::uint8_t* body = buffer_.data() + consumed_;
  const std::size_t body_len = pending_->body_len;
  // Integrity before interpretation: a flipped payload byte must become a
  // typed error here, never a silently wrong decoded value.
  if (body_checksum(body, body_len) != pending_->body_sum) {
    error_ = ProtocolError{ProtoCode::kBadChecksum,
                           "body bytes disagree with the header checksum"};
    error_request_id_ = pending_->request_id;
    return Result::kError;
  }
  frame = Frame{};
  frame.type = pending_->type;
  frame.request_id = pending_->request_id;
  switch (pending_->type) {
    case FrameType::kRequest: {
      WireRequest request;
      error_ = decode_request_body(body, body_len, request);
      if (error_.ok()) {
        request.request_id = pending_->request_id;
        frame.request = std::move(request);
      }
      break;
    }
    case FrameType::kResponse: {
      WireResponse response;
      error_ = decode_response_body(body, body_len, response);
      if (error_.ok()) {
        response.request_id = pending_->request_id;
        frame.response = std::move(response);
      }
      break;
    }
    case FrameType::kError: {
      WireError wire_error;
      error_ = decode_error_body(body, body_len, wire_error);
      if (error_.ok()) {
        wire_error.request_id = pending_->request_id;
        frame.error = std::move(wire_error);
      }
      break;
    }
    case FrameType::kStatsResponse: {
      serve::Stats stats;
      error_ = decode_stats_body(body, body_len, stats);
      if (error_.ok()) frame.stats = std::move(stats);
      break;
    }
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kStatsRequest:
      // Header-only by construction (decode_header enforces body_len == 0).
      break;
  }
  if (!error_.ok()) {
    error_request_id_ = pending_->request_id;
    return Result::kError;
  }
  consumed_ += body_len;
  pending_.reset();
  // Compact: the consumed prefix is dead weight once a frame completes.
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
  return Result::kFrame;
}

}  // namespace parma::net

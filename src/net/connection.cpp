#include "net/connection.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace parma::net {
namespace {

/// Read burst size: one kernel-buffer drain per readable event.
constexpr std::size_t kReadChunk = 64 * 1024;
/// writev gather width: frames coalesced per flush syscall.
constexpr int kMaxIov = 8;

}  // namespace

Connection::Connection(int fd, int wake_fd, std::string peer,
                       std::uint32_t max_body_bytes, std::size_t max_inflight)
    : fd_(fd),
      wake_fd_(wake_fd),
      peer_(std::move(peer)),
      max_inflight_(max_inflight),
      decoder_(max_body_bytes) {}

Connection::~Connection() { ::close(fd_); }

short Connection::poll_events() const {
  short events = 0;
  std::lock_guard lock(mu_);
  if (reading_ && in_flight_ < max_inflight_) events |= POLLIN;
  if (!outbox_.empty()) events |= POLLOUT;
  return events;
}

Connection::IoResult Connection::handle_readable(
    const std::function<void(WireRequest&&)>& on_request) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      decoder_.feed(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n == 0) return IoResult::kClose;  // peer closed; in-flight work is moot
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return IoResult::kClose;
  }

  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(frame);
    if (r == FrameDecoder::Result::kNeedMore) return IoResult::kKeep;
    if (r == FrameDecoder::Result::kError) {
      // The stream has lost frame sync: answer with the typed diagnostic,
      // stop reading, and cancel what the peer still had in flight. The
      // connection drains write-only until finished().
      WireError err;
      err.request_id = decoder_.error_request_id();
      err.code = decoder_.error().code;
      err.message = decoder_.error().message;
      enqueue(encode_error(err));
      reading_ = false;
      close_after_flush_ = true;
      cancel_all();
      return IoResult::kProtocolError;
    }
    if (frame.type == FrameType::kRequest && frame.request) {
      on_request(std::move(*frame.request));
      continue;
    }
    // A client has no business sending response/error frames; treat it as a
    // protocol violation rather than silently ignoring desynced traffic.
    WireError err;
    err.code = ProtoCode::kBadFrameType;
    err.message = "server accepts only request frames";
    enqueue(encode_error(err));
    reading_ = false;
    close_after_flush_ = true;
    cancel_all();
    return IoResult::kProtocolError;
  }
}

Connection::IoResult Connection::handle_writable() {
  for (;;) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    {
      std::lock_guard lock(mu_);
      std::size_t offset = front_offset_;
      for (auto it = outbox_.begin(); it != outbox_.end() && iov_count < kMaxIov;
           ++it) {
        iov[iov_count].iov_base = const_cast<std::uint8_t*>(it->data()) + offset;
        iov[iov_count].iov_len = it->size() - offset;
        ++iov_count;
        offset = 0;
      }
    }
    if (iov_count == 0) return IoResult::kKeep;

    // The gathered buffers stay valid outside the lock: only the I/O thread
    // pops, and deque push_back never invalidates existing elements.
    const ssize_t n = ::writev(fd_, iov, iov_count);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kKeep;
      if (errno == EINTR) continue;
      return IoResult::kClose;  // EPIPE/ECONNRESET: peer is gone
    }

    std::lock_guard lock(mu_);
    std::size_t written = static_cast<std::size_t>(n);
    while (written > 0 && !outbox_.empty()) {
      const std::size_t remaining = outbox_.front().size() - front_offset_;
      if (written >= remaining) {
        written -= remaining;
        outbox_.pop_front();
        front_offset_ = 0;
      } else {
        front_offset_ += written;
        written = 0;
      }
    }
    if (outbox_.empty()) return IoResult::kKeep;
  }
}

bool Connection::finished() const {
  std::lock_guard lock(mu_);
  return close_after_flush_ && outbox_.empty() && in_flight_ == 0;
}

void Connection::enqueue(std::vector<std::uint8_t> frame) {
  {
    std::lock_guard lock(mu_);
    outbox_.push_back(std::move(frame));
  }
  wake();
}

void Connection::begin_request(std::uint64_t /*request_id*/) {
  std::lock_guard lock(mu_);
  ++in_flight_;
}

void Connection::track(std::uint64_t request_id, serve::ExternalTicket ticket) {
  std::lock_guard lock(mu_);
  tickets_.insert_or_assign(request_id, std::move(ticket));
}

void Connection::settle(std::uint64_t request_id) {
  {
    std::lock_guard lock(mu_);
    tickets_.erase(request_id);
    if (in_flight_ > 0) --in_flight_;
  }
  // Settling may reopen POLLIN (the in-flight cap gained a slot), and the
  // usual wake via enqueue() does not happen when the response was dropped.
  wake();
}

void Connection::cancel_all() {
  std::lock_guard lock(mu_);
  for (auto& [id, ticket] : tickets_) ticket.cancel();
}

std::size_t Connection::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

void Connection::wake() const {
  const std::uint8_t byte = 0;
  // Best effort: EAGAIN means the pipe already holds a pending wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &byte, 1);
}

}  // namespace parma::net

#include "net/connection.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/socket_ops.hpp"

namespace parma::net {
namespace {

/// Read burst size: one kernel-buffer drain per readable event.
constexpr std::size_t kReadChunk = 64 * 1024;
/// writev gather width: frames coalesced per flush syscall.
constexpr int kMaxIov = 8;

}  // namespace

Connection::Connection(int fd, int wake_fd, std::string peer,
                       std::uint32_t max_body_bytes, std::size_t max_inflight)
    : fd_(fd),
      wake_fd_(wake_fd),
      peer_(std::move(peer)),
      max_inflight_(max_inflight),
      decoder_(max_body_bytes),
      last_read_(Clock::now()) {}

Connection::~Connection() { ::close(fd_); }

short Connection::poll_events() const {
  short events = 0;
  std::lock_guard lock(mu_);
  if (reading_ && in_flight_ < max_inflight_) events |= POLLIN;
  if (!outbox_.empty()) events |= POLLOUT;
  return events;
}

Connection::IoResult Connection::handle_readable(
    const std::function<void(WireRequest&&)>& on_request,
    const std::function<void()>& on_ping,
    const std::function<void(std::uint64_t)>& on_stats) {
  std::uint8_t chunk[kReadChunk];
  bool got_bytes = false;
  for (;;) {
    const sock::IoCount io = sock::recv_some(fd_, chunk, sizeof chunk);
    if (io.n > 0) {
      got_bytes = true;
      decoder_.feed(chunk, static_cast<std::size_t>(io.n));
      if (static_cast<std::size_t>(io.n) < sizeof chunk) break;
      continue;
    }
    if (io.n == 0) return IoResult::kClose;  // peer closed; in-flight work is moot
    if (io.would_block()) break;
    return IoResult::kClose;
  }
  if (got_bytes) last_read_ = Clock::now();

  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(frame);
    if (r == FrameDecoder::Result::kNeedMore) {
      // Slowloris bookkeeping: stamp when a frame opens, clear when the
      // stream is back on a frame boundary.
      if (decoder_.mid_frame()) {
        if (!frame_start_) frame_start_ = Clock::now();
      } else {
        frame_start_.reset();
      }
      return IoResult::kKeep;
    }
    if (r == FrameDecoder::Result::kError) {
      // The stream has lost frame sync: answer with the typed diagnostic,
      // stop reading, and cancel what the peer still had in flight. The
      // connection drains write-only until finished().
      WireError err;
      err.request_id = decoder_.error_request_id();
      err.code = decoder_.error().code;
      err.message = decoder_.error().message;
      enqueue(encode_error(err));
      reading_ = false;
      close_after_flush_ = true;
      cancel_all();
      return IoResult::kProtocolError;
    }
    frame_start_.reset();  // a frame completed; the boundary clock restarts
    if (frame.type == FrameType::kRequest && frame.request) {
      on_request(std::move(*frame.request));
      continue;
    }
    if (frame.type == FrameType::kPing) {
      enqueue(encode_pong(frame.request_id));
      if (on_ping) on_ping();
      continue;
    }
    if (frame.type == FrameType::kPong) continue;  // stray echo; harmless
    if (frame.type == FrameType::kStatsRequest) {
      if (on_stats) on_stats(frame.request_id);
      continue;
    }
    // A client has no business sending response/error frames; treat it as a
    // protocol violation rather than silently ignoring desynced traffic.
    WireError err;
    err.code = ProtoCode::kBadFrameType;
    err.message = "server accepts only request frames";
    enqueue(encode_error(err));
    reading_ = false;
    close_after_flush_ = true;
    cancel_all();
    return IoResult::kProtocolError;
  }
}

Connection::IoResult Connection::handle_writable() {
  for (;;) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    {
      std::lock_guard lock(mu_);
      std::size_t offset = front_offset_;
      for (auto it = outbox_.begin(); it != outbox_.end() && iov_count < kMaxIov;
           ++it) {
        iov[iov_count].iov_base = const_cast<std::uint8_t*>(it->data()) + offset;
        iov[iov_count].iov_len = it->size() - offset;
        ++iov_count;
        offset = 0;
      }
    }
    if (iov_count == 0) return IoResult::kKeep;

    // The gathered buffers stay valid outside the lock: only the I/O thread
    // pops, and deque push_back never invalidates existing elements.
    const sock::IoCount io = sock::sendv_some(fd_, iov, iov_count);
    if (io.failed()) {
      if (io.would_block()) return IoResult::kKeep;
      return IoResult::kClose;  // EPIPE/ECONNRESET: peer is gone
    }

    std::lock_guard lock(mu_);
    std::size_t written = static_cast<std::size_t>(io.n);
    while (written > 0 && !outbox_.empty()) {
      const std::size_t remaining = outbox_.front().size() - front_offset_;
      if (written >= remaining) {
        written -= remaining;
        outbox_.pop_front();
        front_offset_ = 0;
      } else {
        front_offset_ += written;
        written = 0;
      }
    }
    // Progress was made: the stall clock restarts (or stops, outbox empty).
    write_pending_since_ =
        outbox_.empty() ? std::nullopt : std::make_optional(Clock::now());
    if (outbox_.empty()) return IoResult::kKeep;
  }
}

bool Connection::finished() const {
  std::lock_guard lock(mu_);
  return close_after_flush_ && outbox_.empty() && in_flight_ == 0;
}

void Connection::begin_drain() {
  reading_ = false;
  close_after_flush_ = true;
}

Connection::Health Connection::hygiene(Clock::time_point now,
                                       std::chrono::milliseconds read_deadline,
                                       std::chrono::milliseconds idle_timeout,
                                       std::chrono::milliseconds write_stall) const {
  std::lock_guard lock(mu_);
  if (write_stall.count() > 0 && write_pending_since_ &&
      now - *write_pending_since_ > write_stall) {
    return Health::kWriteStall;
  }
  if (read_deadline.count() > 0 && frame_start_ &&
      now - *frame_start_ > read_deadline) {
    return Health::kSlowloris;
  }
  if (idle_timeout.count() > 0 && in_flight_ == 0 && outbox_.empty() &&
      !frame_start_ && now - last_read_ > idle_timeout) {
    return Health::kIdle;
  }
  return Health::kOk;
}

void Connection::enqueue(std::vector<std::uint8_t> frame) {
  {
    std::lock_guard lock(mu_);
    const bool was_empty = outbox_.empty();
    outbox_.push_back(std::move(frame));
    if (was_empty) write_pending_since_ = Clock::now();
  }
  wake();
}

void Connection::begin_request(std::uint64_t /*request_id*/) {
  std::lock_guard lock(mu_);
  ++in_flight_;
}

void Connection::track(std::uint64_t request_id, serve::ExternalTicket ticket) {
  std::lock_guard lock(mu_);
  tickets_.insert_or_assign(request_id, std::move(ticket));
}

void Connection::settle(std::uint64_t request_id) {
  {
    std::lock_guard lock(mu_);
    tickets_.erase(request_id);
    if (in_flight_ > 0) --in_flight_;
  }
  // Settling may reopen POLLIN (the in-flight cap gained a slot), and the
  // usual wake via enqueue() does not happen when the response was dropped.
  wake();
}

void Connection::cancel_all() {
  std::lock_guard lock(mu_);
  for (auto& [id, ticket] : tickets_) ticket.cancel();
}

std::size_t Connection::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

void Connection::wake() const {
  const std::uint8_t byte = 0;
  // Best effort: EAGAIN means the pipe already holds a pending wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &byte, 1);
}

}  // namespace parma::net

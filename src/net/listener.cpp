#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "async/event.hpp"
#include "common/require.hpp"
#include "net/socket_ops.hpp"

namespace parma::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PARMA_REQUIRE(flags >= 0, "fcntl(F_GETFL) failed");
  PARMA_REQUIRE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK) failed");
}

std::string describe_peer(const sockaddr_storage& addr) {
  if (addr.ss_family == AF_INET6) {
    const auto& v6 = reinterpret_cast<const sockaddr_in6&>(addr);
    char host[INET6_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET6, &v6.sin6_addr, host, sizeof host);
    return "[" + std::string(host) + "]:" + std::to_string(ntohs(v6.sin6_port));
  }
  const auto& v4 = reinterpret_cast<const sockaddr_in&>(addr);
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &v4.sin_addr, host, sizeof host);
  return std::string(host) + ":" + std::to_string(ntohs(v4.sin_port));
}

/// "[::1]" and "::1" are the same listen address.
std::string strip_brackets(const std::string& host) {
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    return host.substr(1, host.size() - 2);
  }
  return host;
}

}  // namespace

Listener::Listener(serve::Server& server, ListenerOptions options)
    : server_(server), options_(std::move(options)) {}

Listener::~Listener() { stop(); }

void Listener::start() {
  if (running_.load(std::memory_order_acquire)) return;

  // An IPv6 literal (contains ':') binds an AF_INET6 socket; "::" clears
  // IPV6_V6ONLY so v4 peers connect too (they appear as mapped addresses).
  const std::string host = strip_brackets(options_.host);
  const bool ipv6 = host.find(':') != std::string::npos;

  listen_fd_ = ::socket(ipv6 ? AF_INET6 : AF_INET,
                        SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  PARMA_REQUIRE(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (ipv6) {
    const int off = 0;
    ::setsockopt(listen_fd_, IPPROTO_IPV6, IPV6_V6ONLY, &off, sizeof off);
    auto& v6 = reinterpret_cast<sockaddr_in6&>(addr);
    v6.sin6_family = AF_INET6;
    v6.sin6_port = htons(options_.port);
    if (::inet_pton(AF_INET6, host.c_str(), &v6.sin6_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      PARMA_REQUIRE(false, "listener host is not a valid IPv6 address: " + host);
    }
    addr_len = sizeof(sockaddr_in6);
  } else {
    auto& v4 = reinterpret_cast<sockaddr_in&>(addr);
    v4.sin_family = AF_INET;
    v4.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, host.c_str(), &v4.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      PARMA_REQUIRE(false, "listener host is not a valid IPv4 address: " + host);
    }
    addr_len = sizeof(sockaddr_in);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), addr_len) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    PARMA_REQUIRE(false, "bind(" + options_.host + ":" +
                             std::to_string(options_.port) +
                             ") failed: " + std::strerror(err));
  }
  PARMA_REQUIRE(::listen(listen_fd_, options_.backlog) == 0, "listen() failed");

  sockaddr_storage bound{};
  socklen_t bound_len = sizeof bound;
  PARMA_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                              &bound_len) == 0,
                "getsockname() failed");
  port_ = bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port)
              : ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);

  int pipe_fds[2];
  PARMA_REQUIRE(::pipe(pipe_fds) == 0, "pipe() failed");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  stop_requested_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  hygiene_due_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });

  // The hygiene clock: a periodic tick marks a sweep due and pokes the poll
  // loop awake. The sweep itself runs on the I/O thread, so connection
  // timestamps stay single-threaded.
  const std::chrono::milliseconds tick = hygiene_period();
  if (tick.count() > 0) {
    timers_ = std::make_unique<async::TimerQueue>();
    timers_->schedule_every(
        std::chrono::duration_cast<std::chrono::microseconds>(tick), [this] {
          hygiene_due_.store(true, std::memory_order_release);
          poke_wake_pipe();
        });
  }
}

std::chrono::milliseconds Listener::hygiene_period() const {
  if (options_.hygiene_tick.count() > 0) return options_.hygiene_tick;
  std::chrono::milliseconds tightest{0};
  for (const std::chrono::milliseconds t :
       {options_.read_deadline, options_.idle_timeout, options_.write_stall_timeout}) {
    if (t.count() > 0 && (tightest.count() == 0 || t < tightest)) tightest = t;
  }
  if (tightest.count() == 0) return std::chrono::milliseconds{0};  // all disabled
  return std::clamp(tightest / 4, std::chrono::milliseconds{10},
                    std::chrono::milliseconds{1000});
}

void Listener::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  stop_requested_.store(true, std::memory_order_release);
  poke_wake_pipe();
  io_thread_.join();
  // The timer thread is joined before the wake pipe closes -- a tick
  // mid-flight may still poke a live (just unwatched) pipe, never a dead fd.
  timers_.reset();

  // The loop is down; cancel what the peers still had in flight so the
  // pipeline completes those chains promptly (kCancelled), then wait for
  // every completion chain. Connections stay alive through the join --
  // straggler completions enqueue into outboxes nobody will flush, which is
  // exactly the "client is gone" contract.
  {
    std::lock_guard lock(conns_mu_);
    for (auto& [fd, conn] : conns_) conn->cancel_all();
  }
  scope_.join();
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }

  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

bool Listener::drain(std::chrono::milliseconds deadline) {
  if (!running_.load(std::memory_order_acquire)) return true;
  draining_.store(true, std::memory_order_release);
  poke_wake_pipe();

  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    if (connection_count() == 0) return true;
    if (std::chrono::steady_clock::now() >= until) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
}

std::size_t Listener::connection_count() const {
  std::lock_guard lock(conns_mu_);
  return conns_.size();
}

ListenerCounters Listener::counters() const {
  ListenerCounters c;
  c.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  c.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  c.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  c.responses_enqueued = responses_enqueued_.load(std::memory_order_relaxed);
  c.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.disconnects = disconnects_.load(std::memory_order_relaxed);
  c.reaped_idle = reaped_idle_.load(std::memory_order_relaxed);
  c.reaped_slowloris = reaped_slowloris_.load(std::memory_order_relaxed);
  c.reaped_write_stall = reaped_write_stall_.load(std::memory_order_relaxed);
  c.pings = pings_.load(std::memory_order_relaxed);
  return c;
}

void Listener::io_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;

  while (!stop_requested_.load(std::memory_order_acquire)) {
    const bool draining = draining_.load(std::memory_order_acquire);
    fds.clear();
    polled.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    {
      std::lock_guard lock(conns_mu_);
      // The listen fd stays armed even at the cap (and while draining):
      // accept_ready answers over-cap dialers with a typed kServerBusy
      // frame, which beats leaving them to hang in the backlog.
      fds.push_back({listen_fd_, POLLIN, 0});
      for (auto& [fd, conn] : conns_) {
        // Idempotent: every pass of a draining loop winds every peer down.
        if (draining) conn->begin_drain();
        fds.push_back({fd, conn->poll_events(), 0});
        polled.push_back(conn);
      }
    }

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; stop() still joins cleanly
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;

    if (fds[0].revents & POLLIN) {
      std::uint8_t drain_buf[256];
      while (::read(wake_read_fd_, drain_buf, sizeof drain_buf) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) accept_ready();

    for (std::size_t i = 0; i < polled.size(); ++i) {
      const pollfd& pfd = fds[i + 2];
      const std::shared_ptr<Connection>& conn = polled[i];
      Connection::IoResult result = Connection::IoResult::kKeep;

      // Read first: POLLHUP often arrives with final bytes still buffered,
      // and the read pass reports the EOF itself.
      if (pfd.revents & POLLIN) {
        result = conn->handle_readable(
            [this, &conn](WireRequest&& wire) { handle_request(conn, std::move(wire)); },
            [this] { pings_.fetch_add(1, std::memory_order_relaxed); },
            [this, &conn](std::uint64_t id) {
              conn->enqueue(encode_stats_response(id, server_.stats()));
            });
      }
      if (result != Connection::IoResult::kClose && (pfd.revents & POLLOUT)) {
        const Connection::IoResult w = conn->handle_writable();
        if (result == Connection::IoResult::kKeep) result = w;
      }
      if (result == Connection::IoResult::kKeep &&
          (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfd.revents & POLLIN) == 0) {
        result = Connection::IoResult::kClose;
      }

      if (result == Connection::IoResult::kProtocolError) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      } else if (result == Connection::IoResult::kClose) {
        teardown(conn->fd(), CloseReason::kDisconnect);
        continue;
      }
      // A poisoned or draining connection lingers write-only until its
      // frames have flushed and its work settled, then closes.
      if (conn->finished()) teardown(conn->fd(), CloseReason::kProtocolError);
    }

    if (hygiene_due_.exchange(false, std::memory_order_acq_rel)) hygiene_sweep();
  }
}

void Listener::hygiene_sweep() {
  const Connection::Clock::time_point now = Connection::Clock::now();
  std::vector<std::pair<int, Connection::Health>> offenders;
  {
    std::lock_guard lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      const Connection::Health verdict =
          conn->hygiene(now, options_.read_deadline, options_.idle_timeout,
                        options_.write_stall_timeout);
      if (verdict != Connection::Health::kOk) offenders.emplace_back(fd, verdict);
    }
  }
  for (const auto& [fd, verdict] : offenders) {
    switch (verdict) {
      case Connection::Health::kSlowloris:
        teardown(fd, CloseReason::kSlowloris);
        break;
      case Connection::Health::kWriteStall:
        teardown(fd, CloseReason::kWriteStall);
        break;
      case Connection::Health::kIdle:
        teardown(fd, CloseReason::kIdle);
        break;
      case Connection::Health::kOk:
        break;
    }
  }
}

void Listener::accept_ready() {
  for (;;) {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the loop will try again
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof options_.sndbuf_bytes);
    }

    bool over_cap;
    {
      std::lock_guard lock(conns_mu_);
      over_cap = conns_.size() >= options_.max_connections ||
                 draining_.load(std::memory_order_acquire);
    }
    if (over_cap) {
      // Typed rejection: the peer learns WHY instead of diagnosing a bare
      // RST. Best-effort single write -- the frame fits any empty socket
      // buffer; a peer too slow to take even that gets the plain close.
      WireError busy;
      busy.code = ProtoCode::kServerBusy;
      busy.message = "listener is at its connection cap";
      const std::vector<std::uint8_t> frame = encode_error(busy);
      (void)sock::send_some(fd, frame.data(), frame.size());
      ::close(fd);
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    auto conn = std::make_shared<Connection>(
        fd, wake_write_fd_, describe_peer(addr), options_.max_body_bytes,
        options_.max_inflight_per_connection);
    {
      std::lock_guard lock(conns_mu_);
      if (conns_.size() >= options_.max_connections) {
        // Raced past the capacity check; shed the newcomer.
        continue;  // conn destructor closes fd
      }
      conns_.emplace(fd, std::move(conn));
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Listener::handle_request(const std::shared_ptr<Connection>& conn,
                              WireRequest&& wire) {
  const std::uint64_t id = wire.request_id;
  conn->begin_request(id);

  // The readiness-event bridge: the pipeline completes by firing the event
  // (any thread), the spawned chain encodes and queues the response. The
  // chain is spawned before admission so an inline rejection finds the
  // continuation already parked and completes it synchronously right here.
  auto event = std::make_shared<async::Event<serve::ParametrizeResult>>();
  std::weak_ptr<Connection> weak = conn;
  scope_.spawn(event->task().then(
      [this, weak, id](serve::ParametrizeResult&& result) {
        const std::shared_ptr<Connection> live = weak.lock();
        if (!live) {
          // Peer disconnected while the request was in the pipeline; the
          // completion has nowhere to go.
          responses_dropped_.fetch_add(1, std::memory_order_relaxed);
          return async::Unit{};
        }
        // Counted before the enqueue: the outbox lock and the socket then
        // order the increment ahead of the peer ever seeing the reply.
        responses_enqueued_.fetch_add(1, std::memory_order_relaxed);
        live->enqueue(encode_response(WireResponse::from_result(id, result)));
        live->settle(id);
        return async::Unit{};
      }));

  serve::ParametrizeRequest request;
  try {
    request = wire.to_request();
  } catch (const std::exception& e) {
    // The decoder vouched for the shape, so this is resource exhaustion or a
    // payload/shape contract the serve layer rejects harder than the wire
    // format does; complete the already-spawned chain with a rejection.
    serve::ParametrizeResult reject;
    reject.status = serve::RequestStatus::kInvalidInput;
    reject.message = e.what();
    event->fire_value(std::move(reject));
    return;
  }

  serve::ExternalTicket ticket = server_.submit_external(
      std::move(request),
      [event](serve::ParametrizeResult&& result) {
        event->fire_value(std::move(result));
      });
  if (ticket.accepted()) {
    requests_admitted_.fetch_add(1, std::memory_order_relaxed);
    conn->track(id, std::move(ticket));
  }
}

void Listener::teardown(int fd, CloseReason reason) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard lock(conns_mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
  }
  if (reason != CloseReason::kProtocolError) {
    // Abrupt disconnect or reaping: whatever the peer still has in the
    // pipeline is cancelled so it stops consuming solver time. (The
    // protocol-error path already cancelled at poisoning time.)
    conn->cancel_all();
  }
  switch (reason) {
    case CloseReason::kIdle:
      reaped_idle_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kSlowloris:
      reaped_slowloris_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kWriteStall:
      reaped_write_stall_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kDisconnect:
    case CloseReason::kProtocolError:
      break;
  }
  disconnects_.fetch_add(1, std::memory_order_relaxed);
  // `conn` drops here; in-flight completions hold weak_ptrs and will find
  // them expired. The destructor closes the fd.
}

void Listener::poke_wake_pipe() {
  const std::uint8_t byte = 0;
  // Best effort: EAGAIN means the pipe already holds a pending wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

}  // namespace parma::net

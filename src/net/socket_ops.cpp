#include "net/socket_ops.hpp"

#include <cerrno>
#include <thread>

#include "fault/injector.hpp"

namespace parma::net::sock {
namespace {

/// A fired reset tears the connection down for real: both directions shut,
/// so the peer sees EOF/RST and this side's operation fails ECONNRESET --
/// the same observable outcome as a genuine mid-flight RST.
IoCount inject_reset(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  return {-1, ECONNRESET};
}

void maybe_stall(fault::Injector* injector, fault::Point point) {
  if (injector->should_fire(point)) std::this_thread::sleep_for(injector->stall);
}

}  // namespace

IoCount send_some(int fd, const void* data, std::size_t len) {
  if (fault::Injector* injector = fault::installed(); injector != nullptr) {
    if (injector->should_fire(fault::Point::kSockReset)) return inject_reset(fd);
    if (len > 1 && injector->should_fire(fault::Point::kSockTornWrite)) {
      len = len / 2;  // a strict prefix: the caller's short-write loop resumes
    }
  }
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;
    return {-1, errno};
  }
}

IoCount sendv_some(int fd, const iovec* iov, int iov_count) {
  iovec torn;  // lifetime must cover the syscall below
  if (fault::Injector* injector = fault::installed(); injector != nullptr) {
    if (injector->should_fire(fault::Point::kSockReset)) return inject_reset(fd);
    if (injector->should_fire(fault::Point::kSockTornWrite) && iov_count > 0 &&
        iov[0].iov_len > 1) {
      torn = iov[0];
      torn.iov_len = torn.iov_len / 2;
      iov = &torn;
      iov_count = 1;
    }
  }
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iov_count);
  for (;;) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;
    return {-1, errno};
  }
}

IoCount recv_some(int fd, void* data, std::size_t len) {
  fault::Injector* injector = fault::installed();
  if (injector != nullptr) {
    maybe_stall(injector, fault::Point::kSockReadStall);
    if (injector->should_fire(fault::Point::kSockReset)) return inject_reset(fd);
  }
  ssize_t n;
  for (;;) {
    n = ::recv(fd, data, len, 0);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    return {-1, errno};
  }
  if (n > 0 && injector != nullptr &&
      injector->should_fire(fault::Point::kSockCorruptByte)) {
    // One flipped bit mid-burst; the frame checksum turns this into a typed
    // protocol error instead of silently corrupted payload data.
    static_cast<std::uint8_t*>(data)[static_cast<std::size_t>(n) / 2] ^= 0x10;
  }
  return {n, 0};
}

IoCount connect_begin(int fd, const sockaddr* addr, socklen_t len) {
  if (fault::Injector* injector = fault::installed(); injector != nullptr) {
    maybe_stall(injector, fault::Point::kSockConnectDelay);
  }
  if (::connect(fd, addr, len) == 0) return {0, 0};
  // EINTR on connect means the handshake proceeds in the background; the
  // caller's poll-for-writable path handles it exactly like EINPROGRESS.
  if (errno == EINTR) return {-1, EINPROGRESS};
  return {-1, errno};
}

}  // namespace parma::net::sock

// parma::net::Listener -- the async TCP front of serve::Server.
//
// One dedicated I/O thread runs a poll(2) readiness loop over a
// non-blocking listening socket, a self-pipe (so pipeline threads can nudge
// the loop when they queue output), and every accepted connection. The loop
// never blocks on a peer and never computes: each decoded request frame is
// bridged into the serving pipeline as a sender source --
//
//   frame -> async::Event::fire  (Server::submit_external completion)
//   event.task().then(encode + enqueue on the connection's outbox)
//
// -- with the chain spawned into a listener-owned AsyncScope. The chain
// holds only a weak_ptr to its connection, so a peer that disconnects
// mid-solve costs nothing: its in-flight requests are cancelled (they
// complete kCancelled at the next pipeline checkpoint) and any completion
// that still fires finds the weak_ptr expired and drops the response.
//
// Lifecycle: start() binds/listens and spawns the I/O thread; stop() wakes
// the loop, joins the thread, cancels every in-flight request, then joins
// the scope -- no completion can outlive the listener. drain() is the
// graceful preamble to stop(): accepting ceases, every connection winds
// down (in-flight requests complete and their responses flush), and the
// call reports whether all peers closed within the deadline. Stop the
// listener BEFORE shutting the server down: the scope join needs the
// pipeline alive to finish the cancelled chains.
//
// Connection hygiene runs on a periodic timer tick (an owned
// async::TimerQueue pokes the wake pipe; the sweep itself runs on the I/O
// thread): connections that hold a frame open past read_deadline
// (slowloris), make no write progress past write_stall_timeout, or sit
// idle past idle_timeout are reaped with a typed counter each. The
// listener binds dual-stack when given an IPv6 host ("::" accepts v4 peers
// too); over-cap connections are rejected with a best-effort kServerBusy
// error frame instead of a silent close.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "async/async_scope.hpp"
#include "async/timer_queue.hpp"
#include "net/connection.hpp"
#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace parma::net {

struct ListenerOptions {
  /// IPv4 or IPv6 listen address; "::" binds dual-stack (v6 + mapped v4).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; port() reports the bound port
  int backlog = 64;
  std::uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Read-side backpressure: POLLIN is withdrawn from a connection at this
  /// many unanswered requests, closing the peer's TCP window instead of
  /// flooding the admission queue.
  std::size_t max_inflight_per_connection = 32;
  std::size_t max_connections = 64;

  // -- connection hygiene (0 disables a check) -------------------------------

  /// Slowloris defense: a frame (header or body) must complete within this
  /// long of starting.
  std::chrono::milliseconds read_deadline{10'000};
  /// Idle reaping: a connection with no traffic and no in-flight work for
  /// this long is closed.
  std::chrono::milliseconds idle_timeout{300'000};
  /// A connection whose queued output makes no progress for this long
  /// (peer stopped reading) is closed.
  std::chrono::milliseconds write_stall_timeout{10'000};
  /// Hygiene sweep period; 0 = auto (a quarter of the tightest enabled
  /// deadline, clamped to [10 ms, 1 s]).
  std::chrono::milliseconds hygiene_tick{0};

  /// Test knob: shrink accepted sockets' SO_SNDBUF so write-stall paths are
  /// reachable with small payloads. 0 = kernel default.
  int sndbuf_bytes = 0;
};

/// Monotonic transport counters (diagnostics / tests).
struct ListenerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over cap: kServerBusy sent
  std::uint64_t requests_admitted = 0;
  std::uint64_t responses_enqueued = 0;
  std::uint64_t responses_dropped = 0;  ///< completion found its peer gone
  std::uint64_t protocol_errors = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reaped_idle = 0;
  std::uint64_t reaped_slowloris = 0;
  std::uint64_t reaped_write_stall = 0;
  std::uint64_t pings = 0;  ///< keepalive pings answered
};

class Listener {
 public:
  /// The server must outlive the listener.
  explicit Listener(serve::Server& server, ListenerOptions options = {});
  ~Listener();  // stop()

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds, listens, and spawns the I/O thread. Throws ContractError when
  /// the address cannot be bound. No-op when already running.
  void start();

  /// Stops accepting, tears every connection down (cancelling its in-flight
  /// requests), and joins the I/O thread and the completion scope.
  /// Idempotent.
  void stop();

  /// Graceful wind-down ahead of stop(): stop accepting, let every
  /// connection finish its in-flight requests and flush its outbox, and
  /// wait until all peers have closed or `deadline` lapses. True = fully
  /// drained; false = stragglers remain (stop() will cut them off). The
  /// listener keeps running either way.
  [[nodiscard]] bool drain(std::chrono::milliseconds deadline);

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t connection_count() const;
  [[nodiscard]] ListenerCounters counters() const;

 private:
  /// Why a connection is being torn down (drives the counters).
  enum class CloseReason {
    kDisconnect,
    kProtocolError,
    kIdle,
    kSlowloris,
    kWriteStall,
  };

  void io_loop();
  void accept_ready();
  /// Admission of one decoded frame: begin/track on the connection, bridge
  /// the completion through an Event into the response chain.
  void handle_request(const std::shared_ptr<Connection>& conn, WireRequest&& wire);
  void teardown(int fd, CloseReason reason);
  /// Reaps connections that violate the hygiene deadlines (I/O thread).
  void hygiene_sweep();
  /// The effective sweep period (resolves the 0 = auto rule).
  [[nodiscard]] std::chrono::milliseconds hygiene_period() const;
  void poke_wake_pipe();

  serve::Server& server_;
  const ListenerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> hygiene_due_{false};

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  async::AsyncScope scope_;
  /// Drives the hygiene sweep; rebuilt per start() (TimerQueue::stop is
  /// terminal).
  std::unique_ptr<async::TimerQueue> timers_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> responses_enqueued_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> reaped_idle_{0};
  std::atomic<std::uint64_t> reaped_slowloris_{0};
  std::atomic<std::uint64_t> reaped_write_stall_{0};
  std::atomic<std::uint64_t> pings_{0};
};

}  // namespace parma::net

// parma::net::Listener -- the async TCP front of serve::Server.
//
// One dedicated I/O thread runs a poll(2) readiness loop over a
// non-blocking listening socket, a self-pipe (so pipeline threads can nudge
// the loop when they queue output), and every accepted connection. The loop
// never blocks on a peer and never computes: each decoded request frame is
// bridged into the serving pipeline as a sender source --
//
//   frame -> async::Event::fire  (Server::submit_external completion)
//   event.task().then(encode + enqueue on the connection's outbox)
//
// -- with the chain spawned into a listener-owned AsyncScope. The chain
// holds only a weak_ptr to its connection, so a peer that disconnects
// mid-solve costs nothing: its in-flight requests are cancelled (they
// complete kCancelled at the next pipeline checkpoint) and any completion
// that still fires finds the weak_ptr expired and drops the response.
//
// Lifecycle: start() binds/listens and spawns the I/O thread; stop() wakes
// the loop, joins the thread, cancels every in-flight request, then joins
// the scope -- no completion can outlive the listener. Stop the listener
// BEFORE shutting the server down: the scope join needs the pipeline alive
// to finish the cancelled chains.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "async/async_scope.hpp"
#include "net/connection.hpp"
#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace parma::net {

struct ListenerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; port() reports the bound port
  int backlog = 64;
  std::uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Read-side backpressure: POLLIN is withdrawn from a connection at this
  /// many unanswered requests, closing the peer's TCP window instead of
  /// flooding the admission queue.
  std::size_t max_inflight_per_connection = 32;
  std::size_t max_connections = 64;
};

/// Monotonic transport counters (diagnostics / tests).
struct ListenerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t responses_enqueued = 0;
  std::uint64_t responses_dropped = 0;  ///< completion found its peer gone
  std::uint64_t protocol_errors = 0;
  std::uint64_t disconnects = 0;
};

class Listener {
 public:
  /// The server must outlive the listener.
  explicit Listener(serve::Server& server, ListenerOptions options = {});
  ~Listener();  // stop()

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds, listens, and spawns the I/O thread. Throws ContractError when
  /// the address cannot be bound. No-op when already running.
  void start();

  /// Stops accepting, tears every connection down (cancelling its in-flight
  /// requests), and joins the I/O thread and the completion scope.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t connection_count() const;
  [[nodiscard]] ListenerCounters counters() const;

 private:
  void io_loop();
  void accept_ready();
  /// Admission of one decoded frame: begin/track on the connection, bridge
  /// the completion through an Event into the response chain.
  void handle_request(const std::shared_ptr<Connection>& conn, WireRequest&& wire);
  void teardown(int fd, bool protocol_error);

  serve::Server& server_;
  const ListenerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  async::AsyncScope scope_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> responses_enqueued_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> disconnects_{0};
};

}  // namespace parma::net

// parma::net::Connection -- one accepted TCP peer inside the listener's
// readiness loop.
//
// The split of responsibilities is strict: the listener's single I/O thread
// owns the socket (reads, writev flushes, poll interest), while pipeline
// threads only ever touch the outbox -- enqueue() appends an encoded frame
// under the outbox lock and pokes the listener's wake pipe, nothing else.
// That keeps every syscall on the I/O thread and makes "a dead client never
// blocks the dispatcher" structural: a completion for a vanished peer either
// fails to lock the connection's weak_ptr (dropped) or appends to an outbox
// that is discarded with the connection; no pipeline thread ever waits on a
// socket.
//
// Backpressure is read-side: once in_flight() reaches the configured cap the
// connection withdraws POLLIN interest, the kernel receive buffer fills, and
// the peer's TCP window closes -- the bounded admission queue never sees
// more than cap frames from one connection. Write-side, frames flush with
// writev scatter-gather straight out of the deque of encoded buffers.
//
// A protocol error (FrameDecoder poisoned -- the stream has lost sync) turns
// the connection write-only: the typed kError frame is queued, reads stop,
// every in-flight request is cancelled, and the connection reports
// finished() once the error frame and any straggler responses have flushed.
//
// Hygiene: the connection tracks three wall-clock facts -- when the last
// bytes arrived, how long the current frame has been open (slowloris: a
// peer that dribbles a header forever), and how long the outbox has gone
// without write progress (a peer that stopped reading). hygiene() turns
// them into a verdict against the listener's deadlines; the listener's
// periodic sweep reaps offenders. begin_drain() is the graceful half:
// reads stop, in-flight work completes and flushes, then finished() turns
// true.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace parma::net {

class Connection {
 public:
  /// What the I/O thread should do with the connection after an event.
  enum class IoResult {
    kKeep,           ///< still healthy
    kClose,          ///< EOF or socket error: tear down now
    kProtocolError,  ///< malformed stream: error frame queued, flush then close
  };

  /// The hygiene sweep's verdict (worst offense wins).
  enum class Health {
    kOk,
    kSlowloris,   ///< a frame has been open past the read deadline
    kWriteStall,  ///< queued output has made no progress past the timeout
    kIdle,        ///< no traffic and no work past the idle timeout
  };

  using Clock = std::chrono::steady_clock;

  /// Takes ownership of `fd` (closed on destruction). `wake_fd` is the write
  /// end of the listener's self-pipe; enqueue() pokes it so the poll loop
  /// re-evaluates this connection's POLLOUT interest.
  Connection(int fd, int wake_fd, std::string peer, std::uint32_t max_body_bytes,
             std::size_t max_inflight);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // -- I/O thread only -------------------------------------------------------

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& peer() const { return peer_; }

  /// Current poll interest: POLLIN while reading is enabled and the
  /// in-flight cap has room, POLLOUT while the outbox holds bytes.
  [[nodiscard]] short poll_events() const;

  /// Drains the socket, feeds the decoder, and hands every complete request
  /// frame to `on_request`. Frames already buffered are always drained, even
  /// at the in-flight cap -- the cap gates POLLIN, not decoded work, so the
  /// overshoot is bounded by one read burst. kPing frames are answered with
  /// a pong in place (`on_ping` observes them, for counters); kPong frames
  /// are tolerated and dropped. kStatsRequest frames are handed to
  /// `on_stats` (the listener answers with a snapshot); without a handler
  /// they are dropped.
  [[nodiscard]] IoResult handle_readable(
      const std::function<void(WireRequest&&)>& on_request,
      const std::function<void()>& on_ping = {},
      const std::function<void(std::uint64_t)>& on_stats = {});

  /// Flushes queued frames with writev until the socket would block.
  [[nodiscard]] IoResult handle_writable();

  /// True when a poisoned or draining connection has flushed its outbox and
  /// every in-flight request has settled: safe to close without losing a
  /// reply.
  [[nodiscard]] bool finished() const;

  /// Graceful wind-down: stop reading new frames, let in-flight requests
  /// complete and their responses flush, then report finished(). Idempotent;
  /// nothing is cancelled.
  void begin_drain();

  /// Judges the connection against the listener's deadlines (a zero
  /// duration disables that check). `now` is passed in so one sweep uses
  /// one timestamp.
  [[nodiscard]] Health hygiene(Clock::time_point now,
                               std::chrono::milliseconds read_deadline,
                               std::chrono::milliseconds idle_timeout,
                               std::chrono::milliseconds write_stall) const;

  // -- any thread ------------------------------------------------------------

  /// Appends one encoded frame to the outbox and wakes the poll loop.
  void enqueue(std::vector<std::uint8_t> frame);

  /// Registers a request admitted on behalf of this peer. begin_request()
  /// runs before admission (so the in-flight count already covers a
  /// rejection that completes inline); track() parks the accepted ticket for
  /// cancel_all(); settle() runs when the completion chain has queued the
  /// response (or dropped it).
  void begin_request(std::uint64_t request_id);
  void track(std::uint64_t request_id, serve::ExternalTicket ticket);
  void settle(std::uint64_t request_id);

  /// Best-effort cancellation of everything this peer still has in flight
  /// (disconnect, listener stop): queued requests complete kCancelled
  /// promptly instead of consuming solver time for a client that is gone.
  void cancel_all();

  [[nodiscard]] std::size_t in_flight() const;

 private:
  void wake() const;

  const int fd_;
  const int wake_fd_;
  const std::string peer_;
  const std::size_t max_inflight_;

  // I/O-thread state (no lock needed).
  FrameDecoder decoder_;
  bool reading_ = true;
  bool close_after_flush_ = false;
  Clock::time_point last_read_;               ///< connect time, then last bytes
  std::optional<Clock::time_point> frame_start_;  ///< current frame opened

  mutable std::mutex mu_;
  std::deque<std::vector<std::uint8_t>> outbox_;
  std::size_t front_offset_ = 0;  ///< bytes of outbox_.front() already sent
  std::size_t in_flight_ = 0;
  std::unordered_map<std::uint64_t, serve::ExternalTicket> tickets_;
  /// Set while the outbox holds bytes; re-stamped on every write progress.
  /// The stall clock, not the enqueue clock.
  std::optional<Clock::time_point> write_pending_since_;
};

}  // namespace parma::net

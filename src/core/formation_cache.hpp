// Cross-call formation cache (the per-device-session reuse described in the
// ROADMAP: many recordings of the same physical device share one topology
// analysis and one unknown layout).
//
// Keyed on the DeviceSpec's shape (rows x cols) -- the homology of the wire
// complex and the unknown layout depend only on the shape, not on measured
// values or the drive voltage. Thread-safe; one cache may serve concurrent
// Sessions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/engine.hpp"
#include "equations/layout.hpp"
#include "mea/device.hpp"
#include "solver/system_kernels.hpp"

namespace parma::core {

class FormationCache {
 public:
  struct Stats {
    std::uint64_t topology_hits = 0;
    std::uint64_t topology_misses = 0;
    std::uint64_t layout_hits = 0;
    std::uint64_t layout_misses = 0;
    std::uint64_t symbolic_hits = 0;
    std::uint64_t symbolic_misses = 0;
  };

  /// Topology report for the engine's device, computed at most once per
  /// (shape, exact_homology) key.
  [[nodiscard]] TopologyReport topology(const Engine& engine, bool exact_homology = false);

  /// Shared unknown layout for the device shape, constructed at most once.
  [[nodiscard]] std::shared_ptr<const equations::UnknownLayout> layout(
      const mea::DeviceSpec& spec);

  /// Shared symbolic analysis of the joint-constraint system (the one-time
  /// pattern / scatter-map side of the solver's symbolic/numeric split),
  /// computed at most once per (device shape, measurement-mask signature).
  /// `system` supplies the term structure on a miss; the sparsity pattern
  /// depends only on the shape and on which pairs were dropped by the mask
  /// (EquationSystem::mask_signature, 0 for a complete sweep), never on
  /// measured values, so the result is reused across recordings.
  [[nodiscard]] std::shared_ptr<const solver::SystemSymbolic> system_symbolic(
      const equations::EquationSystem& system);

  [[nodiscard]] Stats stats() const;

  /// Cached entries for distinct (shape, exact) topology keys + layouts.
  [[nodiscard]] std::size_t size() const;

  void clear();

  /// Process-wide default cache, shared by Sessions that are not given an
  /// explicit one -- this is what makes repeated sessions on the same device
  /// skip redundant setup.
  static const std::shared_ptr<FormationCache>& global();

 private:
  struct ShapeKey {
    Index rows = 0;
    Index cols = 0;
    bool exact = false;        // only meaningful for topology entries
    std::uint64_t mask = 0;    // mask signature; only meaningful for symbolics
    bool operator<(const ShapeKey& other) const {
      if (rows != other.rows) return rows < other.rows;
      if (cols != other.cols) return cols < other.cols;
      if (exact != other.exact) return exact < other.exact;
      return mask < other.mask;
    }
  };

  mutable std::mutex mu_;
  std::map<ShapeKey, TopologyReport> topology_;
  std::map<ShapeKey, std::shared_ptr<const equations::UnknownLayout>> layouts_;
  std::map<ShapeKey, std::shared_ptr<const solver::SystemSymbolic>> symbolics_;
  Stats stats_;
};

}  // namespace parma::core

// Slim public API: the session-facing surface of Parma.
//
//   #include "core/parma_api.hpp"
//
// exports exactly what a caller needs to run the pipeline -- Session (the
// supported entry point), the strategy/timing configuration, the result
// types (TopologyReport, FormationResult, IoResult, InverseResult), the
// execution backends, and the measurement/device model -- without the
// internal machinery the umbrella header core/parma.hpp pulls in.
#pragma once

#include "core/formation_cache.hpp"  // FormationCache (cross-session reuse)
#include "core/session.hpp"          // Session, Session::Builder
#include "core/strategy.hpp"         // Strategy, StrategyOptions, TimingMode, InvalidOptions
#include "core/engine.hpp"           // Engine (implementation layer), result types
#include "exec/executor.hpp"         // exec::Backend, exec::Executor
#include "mea/device.hpp"            // DeviceSpec
#include "mea/measurement.hpp"       // Measurement, measure()/measure_exact()
#include "serve/server.hpp"          // serve::Server (link parma_serve to use)
#include "solver/inverse_solver.hpp" // InverseOptions, InverseResult

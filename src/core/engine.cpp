#include "core/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/logging.hpp"
#include "common/require.hpp"
#include "common/stopwatch.hpp"
#include "equations/serializer.hpp"
#include "exec/executor.hpp"
#include "topology/boundary.hpp"

namespace parma::core {

namespace {

/// Real-mode chunking mirrors each strategy's task shape: the serial baseline
/// is one chunk, the coarse category-bound strategies bundle one device row
/// of pairs per task, and the fine-grained strategy self-schedules
/// `options.chunk` pairs at a time.
Index real_chunk(const StrategyOptions& options, const mea::DeviceSpec& spec) {
  switch (options.strategy) {
    case Strategy::kSingleThread:
      return std::max<Index>(spec.num_endpoint_pairs(), 1);
    case Strategy::kParallel:
    case Strategy::kBalancedParallel:
      return spec.cols;
    case Strategy::kFineGrained:
      return options.chunk;
  }
  return 1;
}

void warn_if_capped(const StrategyOptions& options) {
  if ((options.strategy == Strategy::kParallel ||
       options.strategy == Strategy::kBalancedParallel) &&
      options.workers > kCategoryWorkerCap) {
    PARMA_LOG_WARN << strategy_name(options.strategy) << " strategy caps workers at "
                   << kCategoryWorkerCap << " (one per constraint category); requested "
                   << options.workers << ", using " << kCategoryWorkerCap;
  }
}

// EquationSystem's layout member has no default constructor, so the aggregate
// needs every field spelled out.
FormationResult empty_formation(const mea::DeviceSpec& spec) {
  return FormationResult{equations::EquationSystem{equations::UnknownLayout(spec), {}},
                         0.0,
                         parallel::ScheduleResult{},
                         {},
                         0,
                         1,
                         TimingMode::kRealThreads};
}

}  // namespace

MemoryCdf FormationResult::memory_cdf(std::uint64_t baseline_bytes) const {
  PARMA_REQUIRE(schedule.assignment.size() == tasks.size(),
                "memory_cdf requires the per-task virtual timeline; form with "
                "timing_mode = TimingMode::kVirtualReplay");
  return MemoryCdf(schedule.memory_trace(tasks, baseline_bytes));
}

Engine::Engine(mea::Measurement measurement) : measurement_(std::move(measurement)) {
  measurement_.spec.validate();
  PARMA_REQUIRE(measurement_.z.rows() == spec().rows && measurement_.z.cols() == spec().cols,
                "measurement matrix does not match device");
  // Payload validation after the structural checks: a NaN or non-positive Z
  // entry surfaces here as a typed InvalidMeasurement instead of propagating
  // into the solve.
  mea::validate_measurement(measurement_);
}

TopologyReport Engine::analyze_topology(bool exact_homology) const {
  const topology::WireComplex wc =
      topology::build_wire_complex(spec().rows, spec().cols);
  TopologyReport report;
  report.num_joints = wc.num_vertices;
  report.num_simplices = wc.complex.total_count();
  report.complex_dimension = wc.complex.dimension();
  report.intrinsic_parallelism =
      topology::expected_betti1_crossbar(spec().rows, spec().cols);

  const topology::CycleBasis basis(wc.num_vertices, wc.edges);
  report.cyclomatic_number = basis.cyclomatic_number();

  if (exact_homology) {
    report.betti0 = topology::betti_number(wc.complex, 0);
    report.betti1 = topology::betti_number(wc.complex, 1);
  } else {
    // Identical by rank-nullity over GF(2); the equality is asserted by the
    // topology tests on devices small enough for the exact reduction.
    report.betti0 = basis.num_components();
    report.betti1 = report.cyclomatic_number;
  }

  // The full pairwise-intersection audit is quadratic in |E|; run it on
  // devices where that is cheap and fall back to the structural dimension
  // check (the load-bearing half of Proposition 1) on large ones.
  if (static_cast<Index>(wc.edges.size()) <= 2000) {
    report.proposition1_holds = topology::satisfies_proposition1(wc);
  } else {
    report.proposition1_holds = (report.complex_dimension == 1);
  }
  return report;
}

std::vector<parallel::VirtualTask> Engine::build_tasks(
    const equations::EquationSystem& system, Real generation_seconds,
    TaskGranularity granularity) const {
  // Costs are apportioned from the measured total by each task's share of
  // term count (terms dominate both allocation and arithmetic), preserving
  // the cubic skew between the terminal and intermediate categories that
  // drives the paper's balancing discussion.
  const Index groups = (granularity == TaskGranularity::kFinePairCategory)
                           ? spec().num_endpoint_pairs()
                           : spec().rows;
  std::vector<parallel::VirtualTask> tasks(
      static_cast<std::size_t>(groups) * equations::kNumCategories);
  std::uint64_t total_terms = 0;
  for (const auto& eq : system.equations) total_terms += eq.terms.size();
  PARMA_REQUIRE(total_terms > 0, "system has no terms");

  const equations::UnknownLayout& layout = system.layout;
  for (const auto& eq : system.equations) {
    const Index group = (granularity == TaskGranularity::kFinePairCategory)
                            ? layout.pair_id(eq.pair_i, eq.pair_j)
                            : eq.pair_i;
    auto& task = tasks[static_cast<std::size_t>(group * equations::kNumCategories +
                                                 static_cast<Index>(eq.category))];
    task.category = static_cast<Index>(eq.category);
    task.cost_seconds += generation_seconds * static_cast<Real>(eq.terms.size()) /
                         static_cast<Real>(total_terms);
    task.bytes += eq.footprint_bytes();
  }
  return tasks;
}

FormationResult Engine::form_equations(const StrategyOptions& options) const {
  options.validate();
  warn_if_capped(options);
  return (options.timing_mode == TimingMode::kRealThreads)
             ? form_equations_real(options)
             : form_equations_virtual(options);
}

FormationResult Engine::form_equations(const StrategyOptions& options,
                                       exec::Executor& executor) const {
  PARMA_REQUIRE(options.timing_mode == TimingMode::kRealThreads,
                "caller-supplied executors require TimingMode::kRealThreads");
  return form_equations_real(options, &executor);
}

FormationResult Engine::form_equations_real(const StrategyOptions& options,
                                            exec::Executor* external) const {
  FormationResult result = empty_formation(spec());
  result.timing_mode = TimingMode::kRealThreads;
  result.system.mask_signature = mea::mask_signature(measurement_);
  result.effective_workers = effective_workers(options);

  const TaskGranularity granularity = (options.strategy == Strategy::kFineGrained)
                                          ? TaskGranularity::kFinePairCategory
                                          : TaskGranularity::kCoarseRowCategory;
  const Index groups = (granularity == TaskGranularity::kFinePairCategory)
                           ? spec().num_endpoint_pairs()
                           : spec().rows;
  result.tasks.assign(static_cast<std::size_t>(groups) * equations::kNumCategories, {});
  std::vector<std::uint64_t> task_terms(result.tasks.size(), 0);
  std::uint64_t total_terms = 0;

  const Index pairs = spec().num_endpoint_pairs();
  std::vector<std::vector<equations::JointEquation>> slots(
      options.keep_system ? static_cast<std::size_t>(pairs) : 0);

  std::unique_ptr<exec::Executor> owned;
  if (external == nullptr) {
    owned = exec::make_executor(backend_for(options), result.effective_workers);
    external = owned.get();
  }
  exec::Executor& executor = *external;
  result.effective_workers = executor.workers();
  std::mutex accum_mu;
  const exec::BulkResult bulk = executor.submit_bulk(
      0, pairs, real_chunk(options, spec()),
      [&](Index lo, Index hi) {
        for (Index p = lo; p < hi; ++p) {
          const Index i = p / spec().cols;
          const Index j = p % spec().cols;
          std::vector<equations::JointEquation> pair_eqs =
              equations::generate_pair_equations(result.system.layout, measurement_, i, j);
          // All equations of a pair share one group (the pair for fine
          // granularity, the device row for coarse); pre-aggregate per
          // category so the lock only covers a handful of slot updates.
          const Index group = (granularity == TaskGranularity::kFinePairCategory) ? p : i;
          std::uint64_t local_terms[equations::kNumCategories] = {};
          std::uint64_t local_bytes[equations::kNumCategories] = {};
          std::uint64_t pair_bytes = 0;
          for (const auto& eq : pair_eqs) {
            const auto c = static_cast<std::size_t>(eq.category);
            local_terms[c] += eq.terms.size();
            local_bytes[c] += eq.footprint_bytes();
            pair_bytes += eq.footprint_bytes();
          }
          {
            std::lock_guard lock(accum_mu);
            for (int c = 0; c < equations::kNumCategories; ++c) {
              if (local_terms[c] == 0 && local_bytes[c] == 0) continue;
              const std::size_t slot =
                  static_cast<std::size_t>(group * equations::kNumCategories + c);
              result.tasks[slot].category = c;
              result.tasks[slot].bytes += local_bytes[c];
              task_terms[slot] += local_terms[c];
              total_terms += local_terms[c];
            }
            result.equation_bytes += pair_bytes;
          }
          if (options.keep_system) slots[static_cast<std::size_t>(p)] = std::move(pair_eqs);
        }
      },
      /*capture_costs=*/true);
  result.generation_seconds = bulk.elapsed_seconds;
  PARMA_REQUIRE(total_terms > 0, "system has no terms");

  // Apportion the aggregate measured CPU time (sum of per-chunk wall times
  // across workers) by term share, as the virtual path does with the serial
  // generation time.
  const Real cpu_seconds = bulk.cpu_seconds();
  for (std::size_t t = 0; t < result.tasks.size(); ++t) {
    result.tasks[t].cost_seconds =
        cpu_seconds * static_cast<Real>(task_terms[t]) / static_cast<Real>(total_terms);
  }

  if (options.keep_system) {
    const Index expected = equations::expected_equation_count(measurement_);
    result.system.equations.reserve(static_cast<std::size_t>(expected));
    for (auto& slot : slots) {
      for (auto& eq : slot) result.system.equations.push_back(std::move(eq));
    }
    PARMA_REQUIRE(static_cast<Index>(result.system.equations.size()) == expected,
                  "real-thread formation produced wrong equation count");
  }

  // Measured summary: real wall-clock makespan, aggregate work, no virtual
  // per-task timeline (assignment/start_time stay empty by design).
  result.schedule.makespan_seconds = bulk.elapsed_seconds;
  result.schedule.total_work_seconds = cpu_seconds;
  result.schedule.worker_finish.assign(static_cast<std::size_t>(result.effective_workers),
                                       bulk.elapsed_seconds);
  return result;
}

FormationResult Engine::form_equations_virtual(const StrategyOptions& options) const {
  FormationResult result = empty_formation(spec());
  result.timing_mode = TimingMode::kVirtualReplay;
  result.system.mask_signature = mea::mask_signature(measurement_);
  result.effective_workers = effective_workers(options);
  if (options.keep_system) {
    result.system.equations.reserve(
        static_cast<std::size_t>(equations::expected_equation_count(measurement_)));
  }

  // Coarse-grained strategies bundle one device row per category; the
  // fine-grained (PyMP-style) strategy works at (pair x category) units.
  const TaskGranularity granularity = (options.strategy == Strategy::kFineGrained)
                                          ? TaskGranularity::kFinePairCategory
                                          : TaskGranularity::kCoarseRowCategory;
  const Index groups = (granularity == TaskGranularity::kFinePairCategory)
                           ? spec().num_endpoint_pairs()
                           : spec().rows;
  result.tasks.assign(static_cast<std::size_t>(groups) * equations::kNumCategories, {});
  std::vector<std::uint64_t> task_terms(result.tasks.size(), 0);
  std::uint64_t total_terms = 0;

  Stopwatch total;
  for (Index i = 0; i < spec().rows; ++i) {
    for (Index j = 0; j < spec().cols; ++j) {
      std::vector<equations::JointEquation> pair_eqs =
          equations::generate_pair_equations(result.system.layout, measurement_, i, j);
      for (auto& eq : pair_eqs) {
        const Index group = (granularity == TaskGranularity::kFinePairCategory)
                                ? result.system.layout.pair_id(i, j)
                                : i;
        const std::size_t slot = static_cast<std::size_t>(
            group * equations::kNumCategories + static_cast<Index>(eq.category));
        task_terms[slot] += eq.terms.size();
        total_terms += eq.terms.size();
        result.tasks[slot].category = static_cast<Index>(eq.category);
        result.tasks[slot].bytes += eq.footprint_bytes();
        result.equation_bytes += eq.footprint_bytes();
        if (options.keep_system) result.system.equations.push_back(std::move(eq));
      }
    }
  }
  result.generation_seconds = total.elapsed_seconds();
  PARMA_REQUIRE(total_terms > 0, "system has no terms");
  for (std::size_t t = 0; t < result.tasks.size(); ++t) {
    result.tasks[t].cost_seconds = result.generation_seconds *
                                   static_cast<Real>(task_terms[t]) /
                                   static_cast<Real>(total_terms);
  }

  switch (options.strategy) {
    case Strategy::kSingleThread:
      result.schedule = parallel::schedule_serial(result.tasks, options.cost_model);
      break;
    case Strategy::kParallel:
      // The paper: "we are restricted from having more than four threads".
      result.schedule = parallel::schedule_by_category(
          result.tasks, result.effective_workers, options.cost_model);
      break;
    case Strategy::kBalancedParallel:
      // Work-stealing among the category threads (Section IV-C1): it lifts
      // Parallel's skew, but keeps Parallel's four-thread structure -- the
      // paper classifies it as coarse-grained, and it is the fine-grained
      // strategy's ability to use k >> 4 workers that overtakes it at scale.
      result.schedule = parallel::schedule_balanced_lpt(
          result.tasks, result.effective_workers, options.cost_model);
      break;
    case Strategy::kFineGrained:
      result.schedule = parallel::schedule_dynamic(result.tasks, options.workers,
                                                   options.chunk, options.cost_model);
      break;
  }
  return result;
}

IoResult Engine::write_equations(const std::string& directory,
                                 const StrategyOptions& options) const {
  options.validate();
  // The shard layout assumes the full fixed per-pair equation census; a
  // masked sweep (variable equations per pair) is a serve-path concern, not a
  // serialization one.
  PARMA_REQUIRE(mea::masked_entry_count(measurement_) == 0,
                "write_equations does not support masked measurements");
  IoResult io{form_equations(options), 0.0, 0.0, 0, {}};
  const Index shards = options.workers;
  std::filesystem::create_directories(directory);

  // One contiguous pair-range shard per worker. Shards are streamed pair by
  // pair (regenerating equations when the formation pass discarded them), so
  // resident memory stays bounded at large n.
  const bool have_system = !io.formation.system.equations.empty();
  const Index pairs = spec().num_endpoint_pairs();

  // Writes shard `s` to its own file; returns bytes written and fills
  // `serialize_seconds` with the time spent serializing (excluding any
  // regeneration, which is billed to the formation phase).
  auto write_shard = [&](Index s, Real& serialize_seconds) -> std::pair<std::string, std::uint64_t> {
    const Index first_pair = pairs * s / shards;
    const Index last_pair = pairs * (s + 1) / shards;
    std::ostringstream name;
    name << directory << "/equations_shard_" << s << ".txt";
    Stopwatch shard_clock;
    std::ofstream out(name.str());
    if (!out) throw IoError("cannot open '" + name.str() + "' for writing");
    out << "# parma-equations v1 shard " << s << "/" << shards << '\n';
    std::uint64_t bytes = 0;
    serialize_seconds = 0.0;
    if (have_system) {
      const std::size_t eq_per_pair =
          static_cast<std::size_t>(spec().num_equations() / pairs);
      bytes = equations::write_system_range(
          out, io.formation.system, static_cast<std::size_t>(first_pair) * eq_per_pair,
          static_cast<std::size_t>(last_pair) * eq_per_pair);
      serialize_seconds = shard_clock.elapsed_seconds();
    } else {
      for (Index p = first_pair; p < last_pair; ++p) {
        const auto pair_eqs = equations::generate_pair_equations(
            io.formation.system.layout, measurement_, p / spec().cols, p % spec().cols);
        Stopwatch write_clock;
        for (const auto& eq : pair_eqs) bytes += equations::write_equation_line(out, eq);
        serialize_seconds += write_clock.elapsed_seconds();
      }
    }
    out.flush();
    if (!out) throw IoError("write to '" + name.str() + "' failed");
    return {name.str(), bytes};
  };

  std::vector<std::string> shard_paths(static_cast<std::size_t>(shards));
  std::vector<std::uint64_t> shard_bytes(static_cast<std::size_t>(shards), 0);
  std::vector<Real> shard_serialize(static_cast<std::size_t>(shards), 0.0);

  Stopwatch all_writes;
  if (options.timing_mode == TimingMode::kRealThreads) {
    // Real mode: shards go to independent files, so each is one executor
    // task and the k concurrent writers are actual threads.
    const auto executor = exec::make_executor(
        backend_for(options), std::min<Index>(io.formation.effective_workers, shards));
    executor->submit_bulk(0, shards, 1, [&](Index lo, Index hi) {
      for (Index s = lo; s < hi; ++s) {
        auto [path, bytes] = write_shard(s, shard_serialize[static_cast<std::size_t>(s)]);
        shard_paths[static_cast<std::size_t>(s)] = std::move(path);
        shard_bytes[static_cast<std::size_t>(s)] = bytes;
      }
    });
  } else {
    for (Index s = 0; s < shards; ++s) {
      auto [path, bytes] = write_shard(s, shard_serialize[static_cast<std::size_t>(s)]);
      shard_paths[static_cast<std::size_t>(s)] = std::move(path);
      shard_bytes[static_cast<std::size_t>(s)] = bytes;
    }
  }
  io.write_seconds = all_writes.elapsed_seconds();

  io.shard_paths = std::move(shard_paths);
  for (const std::uint64_t b : shard_bytes) io.bytes_written += b;

  if (options.timing_mode == TimingMode::kRealThreads) {
    io.virtual_end_to_end = io.formation.generation_seconds + io.write_seconds;
  } else {
    // Virtual end-to-end: the formation makespan plus the slowest shard's
    // write, modeling k concurrent writers on independent files.
    std::vector<parallel::VirtualTask> write_tasks;
    write_tasks.reserve(static_cast<std::size_t>(shards));
    for (Index s = 0; s < shards; ++s) {
      write_tasks.push_back({shard_serialize[static_cast<std::size_t>(s)], 0,
                             shard_bytes[static_cast<std::size_t>(s)]});
    }
    const parallel::ScheduleResult write_schedule =
        parallel::schedule_balanced_lpt(write_tasks, shards, options.cost_model);
    io.virtual_end_to_end =
        io.formation.virtual_seconds() + write_schedule.makespan_seconds;
  }
  return io;
}

mpisim::ClusterResult Engine::distributed_formation(const FormationResult& formation,
                                                    Index ranks,
                                                    const mpisim::ClusterCostModel& model) const {
  mpisim::ClusterCostModel tuned = model;
  if (tuned.broadcast_bytes == 0) {
    // Every rank needs the measured Z and U matrices.
    tuned.broadcast_bytes =
        2 * static_cast<std::uint64_t>(spec().rows * spec().cols) * sizeof(Real);
  }
  return mpisim::simulate_cluster(formation.tasks, ranks, tuned);
}

Real Engine::execute_real_threads(Index workers, equations::EquationSystem* out) const {
  StrategyOptions options;
  options.strategy = Strategy::kFineGrained;
  options.workers = workers;
  options.chunk = 4;
  options.timing_mode = TimingMode::kRealThreads;
  options.backend = exec::Backend::kPooled;
  FormationResult result = form_equations(options);
  if (out != nullptr) *out = std::move(result.system);
  return result.generation_seconds;
}

solver::InverseResult Engine::recover(const solver::InverseOptions& options) const {
  return solver::recover_resistances(measurement_, options);
}

}  // namespace parma::core

#include "core/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/require.hpp"
#include "common/stopwatch.hpp"
#include "equations/serializer.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "topology/boundary.hpp"

namespace parma::core {

MemoryCdf FormationResult::memory_cdf(std::uint64_t baseline_bytes) const {
  return MemoryCdf(schedule.memory_trace(tasks, baseline_bytes));
}

Engine::Engine(mea::Measurement measurement) : measurement_(std::move(measurement)) {
  measurement_.spec.validate();
  PARMA_REQUIRE(measurement_.z.rows() == spec().rows && measurement_.z.cols() == spec().cols,
                "measurement matrix does not match device");
}

TopologyReport Engine::analyze_topology(bool exact_homology) const {
  const topology::WireComplex wc =
      topology::build_wire_complex(spec().rows, spec().cols);
  TopologyReport report;
  report.num_joints = wc.num_vertices;
  report.num_simplices = wc.complex.total_count();
  report.complex_dimension = wc.complex.dimension();
  report.intrinsic_parallelism =
      topology::expected_betti1_crossbar(spec().rows, spec().cols);

  const topology::CycleBasis basis(wc.num_vertices, wc.edges);
  report.cyclomatic_number = basis.cyclomatic_number();

  if (exact_homology) {
    report.betti0 = topology::betti_number(wc.complex, 0);
    report.betti1 = topology::betti_number(wc.complex, 1);
  } else {
    // Identical by rank-nullity over GF(2); the equality is asserted by the
    // topology tests on devices small enough for the exact reduction.
    report.betti0 = basis.num_components();
    report.betti1 = report.cyclomatic_number;
  }

  // The full pairwise-intersection audit is quadratic in |E|; run it on
  // devices where that is cheap and fall back to the structural dimension
  // check (the load-bearing half of Proposition 1) on large ones.
  if (static_cast<Index>(wc.edges.size()) <= 2000) {
    report.proposition1_holds = topology::satisfies_proposition1(wc);
  } else {
    report.proposition1_holds = (report.complex_dimension == 1);
  }
  return report;
}

std::vector<parallel::VirtualTask> Engine::build_tasks(
    const equations::EquationSystem& system, Real generation_seconds,
    TaskGranularity granularity) const {
  // Costs are apportioned from the measured total by each task's share of
  // term count (terms dominate both allocation and arithmetic), preserving
  // the cubic skew between the terminal and intermediate categories that
  // drives the paper's balancing discussion.
  const Index groups = (granularity == TaskGranularity::kFinePairCategory)
                           ? spec().num_endpoint_pairs()
                           : spec().rows;
  std::vector<parallel::VirtualTask> tasks(
      static_cast<std::size_t>(groups) * equations::kNumCategories);
  std::uint64_t total_terms = 0;
  for (const auto& eq : system.equations) total_terms += eq.terms.size();
  PARMA_REQUIRE(total_terms > 0, "system has no terms");

  const equations::UnknownLayout& layout = system.layout;
  for (const auto& eq : system.equations) {
    const Index group = (granularity == TaskGranularity::kFinePairCategory)
                            ? layout.pair_id(eq.pair_i, eq.pair_j)
                            : eq.pair_i;
    auto& task = tasks[static_cast<std::size_t>(group * equations::kNumCategories +
                                                 static_cast<Index>(eq.category))];
    task.category = static_cast<Index>(eq.category);
    task.cost_seconds += generation_seconds * static_cast<Real>(eq.terms.size()) /
                         static_cast<Real>(total_terms);
    task.bytes += eq.footprint_bytes();
  }
  return tasks;
}

FormationResult Engine::form_equations(const StrategyOptions& options) const {
  PARMA_REQUIRE(options.workers >= 1, "need at least one worker");
  FormationResult result{equations::EquationSystem{equations::UnknownLayout(spec()), {}},
                         0.0,
                         {},
                         {},
                         0};
  if (options.keep_system) {
    result.system.equations.reserve(static_cast<std::size_t>(spec().num_equations()));
  }

  // Coarse-grained strategies bundle one device row per category; the
  // fine-grained (PyMP-style) strategy works at (pair x category) units.
  const TaskGranularity granularity = (options.strategy == Strategy::kFineGrained)
                                          ? TaskGranularity::kFinePairCategory
                                          : TaskGranularity::kCoarseRowCategory;
  const Index groups = (granularity == TaskGranularity::kFinePairCategory)
                           ? spec().num_endpoint_pairs()
                           : spec().rows;
  result.tasks.assign(static_cast<std::size_t>(groups) * equations::kNumCategories, {});
  std::vector<std::uint64_t> task_terms(result.tasks.size(), 0);
  std::uint64_t total_terms = 0;

  Stopwatch total;
  for (Index i = 0; i < spec().rows; ++i) {
    for (Index j = 0; j < spec().cols; ++j) {
      std::vector<equations::JointEquation> pair_eqs =
          equations::generate_pair_equations(result.system.layout, measurement_, i, j);
      for (auto& eq : pair_eqs) {
        const Index group = (granularity == TaskGranularity::kFinePairCategory)
                                ? result.system.layout.pair_id(i, j)
                                : i;
        const std::size_t slot = static_cast<std::size_t>(
            group * equations::kNumCategories + static_cast<Index>(eq.category));
        task_terms[slot] += eq.terms.size();
        total_terms += eq.terms.size();
        result.tasks[slot].category = static_cast<Index>(eq.category);
        result.tasks[slot].bytes += eq.footprint_bytes();
        result.equation_bytes += eq.footprint_bytes();
        if (options.keep_system) result.system.equations.push_back(std::move(eq));
      }
    }
  }
  result.generation_seconds = total.elapsed_seconds();
  PARMA_REQUIRE(total_terms > 0, "system has no terms");
  for (std::size_t t = 0; t < result.tasks.size(); ++t) {
    result.tasks[t].cost_seconds = result.generation_seconds *
                                   static_cast<Real>(task_terms[t]) /
                                   static_cast<Real>(total_terms);
  }

  switch (options.strategy) {
    case Strategy::kSingleThread:
      result.schedule = parallel::schedule_serial(result.tasks, options.cost_model);
      break;
    case Strategy::kParallel:
      // The paper: "we are restricted from having more than four threads".
      result.schedule = parallel::schedule_by_category(
          result.tasks, std::min<Index>(options.workers, equations::kNumCategories),
          options.cost_model);
      break;
    case Strategy::kBalancedParallel:
      // Work-stealing among the category threads (Section IV-C1): it lifts
      // Parallel's skew, but keeps Parallel's four-thread structure -- the
      // paper classifies it as coarse-grained, and it is the fine-grained
      // strategy's ability to use k >> 4 workers that overtakes it at scale.
      result.schedule = parallel::schedule_balanced_lpt(
          result.tasks, std::min<Index>(options.workers, equations::kNumCategories),
          options.cost_model);
      break;
    case Strategy::kFineGrained:
      result.schedule = parallel::schedule_dynamic(result.tasks, options.workers,
                                                   options.chunk, options.cost_model);
      break;
  }
  return result;
}

IoResult Engine::write_equations(const std::string& directory,
                                 const StrategyOptions& options) const {
  IoResult io{form_equations(options), 0.0, 0.0, 0, {}};
  const Index shards = std::max<Index>(options.workers, 1);
  std::filesystem::create_directories(directory);

  // One contiguous pair-range shard per worker. Shards are streamed pair by
  // pair (regenerating equations when the formation pass discarded them), so
  // resident memory stays bounded at large n; the virtual end-to-end adds the
  // slowest shard's write on top of the formation makespan, modeling k
  // concurrent writers on independent files.
  const bool have_system = !io.formation.system.equations.empty();
  const Index pairs = spec().num_endpoint_pairs();
  std::vector<parallel::VirtualTask> write_tasks;
  Stopwatch all_writes;
  for (Index s = 0; s < shards; ++s) {
    const Index first_pair = pairs * s / shards;
    const Index last_pair = pairs * (s + 1) / shards;
    std::ostringstream name;
    name << directory << "/equations_shard_" << s << ".txt";
    Stopwatch shard_clock;
    std::ofstream out(name.str());
    if (!out) throw IoError("cannot open '" + name.str() + "' for writing");
    out << "# parma-equations v1 shard " << s << "/" << shards << '\n';
    std::uint64_t bytes = 0;
    Real shard_write_seconds = 0.0;
    if (have_system) {
      const std::size_t eq_per_pair =
          static_cast<std::size_t>(spec().num_equations() / pairs);
      bytes = equations::write_system_range(
          out, io.formation.system, static_cast<std::size_t>(first_pair) * eq_per_pair,
          static_cast<std::size_t>(last_pair) * eq_per_pair);
      shard_write_seconds = shard_clock.elapsed_seconds();
    } else {
      // Regenerate pair by pair; bill only the serialization to the write
      // phase (generation is already accounted in the formation schedule).
      for (Index p = first_pair; p < last_pair; ++p) {
        const auto pair_eqs = equations::generate_pair_equations(
            io.formation.system.layout, measurement_, p / spec().cols, p % spec().cols);
        Stopwatch write_clock;
        for (const auto& eq : pair_eqs) bytes += equations::write_equation_line(out, eq);
        shard_write_seconds += write_clock.elapsed_seconds();
      }
    }
    out.flush();
    if (!out) throw IoError("write to '" + name.str() + "' failed");
    io.bytes_written += bytes;
    io.shard_paths.push_back(name.str());
    write_tasks.push_back({shard_write_seconds, 0, bytes});
  }
  io.write_seconds = all_writes.elapsed_seconds();

  const parallel::ScheduleResult write_schedule =
      parallel::schedule_balanced_lpt(write_tasks, shards, options.cost_model);
  io.virtual_end_to_end =
      io.formation.virtual_seconds() + write_schedule.makespan_seconds;
  return io;
}

mpisim::ClusterResult Engine::distributed_formation(const FormationResult& formation,
                                                    Index ranks,
                                                    const mpisim::ClusterCostModel& model) const {
  mpisim::ClusterCostModel tuned = model;
  if (tuned.broadcast_bytes == 0) {
    // Every rank needs the measured Z and U matrices.
    tuned.broadcast_bytes =
        2 * static_cast<std::uint64_t>(spec().rows * spec().cols) * sizeof(Real);
  }
  return mpisim::simulate_cluster(formation.tasks, ranks, tuned);
}

Real Engine::execute_real_threads(Index workers, equations::EquationSystem* out) const {
  PARMA_REQUIRE(workers >= 1, "need at least one worker");
  const Index pairs = spec().num_endpoint_pairs();
  std::vector<std::vector<equations::JointEquation>> slots(static_cast<std::size_t>(pairs));
  const equations::UnknownLayout layout(spec());

  Stopwatch clock;
  parallel::ThreadPool pool(workers);
  parallel::ForOptions loop;
  loop.schedule = parallel::Schedule::kDynamic;
  loop.chunk = 4;
  parallel::parallel_for(
      pool, 0, pairs,
      [&](Index p) {
        const Index i = p / spec().cols;
        const Index j = p % spec().cols;
        slots[static_cast<std::size_t>(p)] =
            equations::generate_pair_equations(layout, measurement_, i, j);
      },
      loop);
  const Real elapsed = clock.elapsed_seconds();

  equations::EquationSystem system{layout, {}};
  system.equations.reserve(static_cast<std::size_t>(spec().num_equations()));
  for (auto& slot : slots) {
    for (auto& eq : slot) system.equations.push_back(std::move(eq));
  }
  PARMA_REQUIRE(static_cast<Index>(system.equations.size()) == spec().num_equations(),
                "parallel formation produced wrong equation count");
  if (out != nullptr) *out = std::move(system);
  return elapsed;
}

solver::InverseResult Engine::recover(const solver::InverseOptions& options) const {
  return solver::recover_resistances(measurement_, options);
}

}  // namespace parma::core

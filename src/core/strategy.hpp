// Parallelization strategies (paper Sections IV-A, IV-C and V).
#pragma once

#include <string>

#include "common/require.hpp"
#include "common/types.hpp"
#include "exec/executor.hpp"
#include "parallel/virtual_scheduler.hpp"

namespace parma::core {

/// The paper's evaluated configurations.
enum class Strategy {
  /// The serialized BigData'18-style implementation.
  kSingleThread,
  /// One dedicated thread per constraint category; at most four useful
  /// workers and no balancing (Section IV-A).
  kParallel,
  /// Deterministic work-stealing rebalance of the category tasks
  /// (Section IV-C1).
  kBalancedParallel,
  /// Betti-number-aware fine-grained multiprocessing, the PyMP-k analogue:
  /// per-pair tasks self-scheduled onto k workers (Section IV-C2).
  kFineGrained,
};

const char* strategy_name(Strategy strategy);

/// How a formation run is timed.
enum class TimingMode {
  /// Default: the strategy maps to a real exec::Executor backend and the
  /// reported times are wall-clock on the host's actual cores.
  kRealThreads,
  /// Paper-figure reproduction: generation is measured single-threaded and
  /// the k-worker timing is the deterministic virtual replay of
  /// parallel/virtual_scheduler.hpp (see DESIGN.md Section 2).
  kVirtualReplay,
};

const char* timing_mode_name(TimingMode mode);

/// Thrown by StrategyOptions::validate() for out-of-range options (e.g.
/// workers < 1 or chunk < 1). A ContractError subtype so existing callers
/// that catch ContractError keep working.
class InvalidOptions : public ContractError {
 public:
  using ContractError::ContractError;
};

/// The Parallel / Balanced Parallel strategies dedicate one worker per
/// constraint category; the paper's Section IV-A has four categories, so
/// those strategies can use at most four workers ("we are restricted from
/// having more than four threads"). Requests above the cap are honored up to
/// the cap and surfaced via FormationResult::effective_workers plus a logged
/// warning.
inline constexpr Index kCategoryWorkerCap = 4;

struct StrategyOptions {
  Strategy strategy = Strategy::kFineGrained;
  Index workers = 4;        ///< k; ignored by kSingleThread, capped at 4 by kParallel
  Index chunk = 1;          ///< dynamic chunk size for kFineGrained
  parallel::CostModel cost_model;  ///< virtual-runtime overhead knobs

  /// When false, equations are generated (and timed, and counted) pair by
  /// pair but immediately discarded, bounding resident memory to one pair.
  /// Large-n benchmark sweeps need this: a fully materialized n = 100 system
  /// holds ~8 GB of term storage. The returned FormationResult then has an
  /// empty `system.equations` but complete tasks/census/footprint metrics.
  bool keep_system = true;

  /// Real threads by default; kVirtualReplay opts into the deterministic
  /// schedule replay that reproduces the paper's figures on any host.
  TimingMode timing_mode = TimingMode::kRealThreads;

  /// Real-thread backend override. kAuto (default) derives the backend from
  /// the strategy: kSingleThread -> serial, kParallel / kFineGrained ->
  /// pooled, kBalancedParallel -> stealing. Ignored by kVirtualReplay.
  exec::Backend backend = exec::Backend::kAuto;

  /// Throws InvalidOptions when workers < 1 or chunk < 1. Called by every
  /// Engine entry point that consumes options.
  void validate() const;
};

/// Worker count a strategy actually uses: 1 for kSingleThread, at most
/// kCategoryWorkerCap for the category-bound strategies, `workers` for
/// kFineGrained.
Index effective_workers(const StrategyOptions& options);

/// The real-thread backend for `options` (resolves kAuto per the strategy).
exec::Backend backend_for(const StrategyOptions& options);

/// Task granularity used when forming equations under a strategy:
/// category-level strategies operate on (pair x category) tasks, the
/// fine-grained strategy on the same tasks claimed individually.
struct TaskShape {
  Index tasks_per_pair = 0;
  std::string description;
};

}  // namespace parma::core

// Parallelization strategies (paper Sections IV-A, IV-C and V).
#pragma once

#include <string>

#include "common/types.hpp"
#include "parallel/virtual_scheduler.hpp"

namespace parma::core {

/// The paper's evaluated configurations.
enum class Strategy {
  /// The serialized BigData'18-style implementation.
  kSingleThread,
  /// One dedicated thread per constraint category; at most four useful
  /// workers and no balancing (Section IV-A).
  kParallel,
  /// Deterministic work-stealing rebalance of the category tasks
  /// (Section IV-C1).
  kBalancedParallel,
  /// Betti-number-aware fine-grained multiprocessing, the PyMP-k analogue:
  /// per-pair tasks self-scheduled onto k workers (Section IV-C2).
  kFineGrained,
};

const char* strategy_name(Strategy strategy);

struct StrategyOptions {
  Strategy strategy = Strategy::kFineGrained;
  Index workers = 4;        ///< k; ignored by kSingleThread, capped at 4 by kParallel
  Index chunk = 1;          ///< dynamic chunk size for kFineGrained
  parallel::CostModel cost_model;  ///< virtual-runtime overhead knobs

  /// When false, equations are generated (and timed, and counted) pair by
  /// pair but immediately discarded, bounding resident memory to one pair.
  /// Large-n benchmark sweeps need this: a fully materialized n = 100 system
  /// holds ~8 GB of term storage. The returned FormationResult then has an
  /// empty `system.equations` but complete tasks/census/footprint metrics.
  bool keep_system = true;
};

/// Task granularity used when forming equations under a strategy:
/// category-level strategies operate on (pair x category) tasks, the
/// fine-grained strategy on the same tasks claimed individually.
struct TaskShape {
  Index tasks_per_pair = 0;
  std::string description;
};

}  // namespace parma::core

// parma::core::Session -- the supported entry point to the Parma pipeline.
//
//   auto session = Session::on(measurement)
//                      .strategy(Strategy::kFineGrained)
//                      .workers(8)
//                      .build();
//   const TopologyReport topo = session.topology();   // cached across sessions
//   const FormationResult eqs = session.form();       // real threads by default
//   const solver::InverseResult r = session.recover();
//
// A Session owns one measurement, the strategy configuration, and a
// FormationCache (shared process-wide by default) that memoizes the device's
// topology analysis and unknown layout, so repeated sessions on the same
// device -- the many-recordings-per-device workload -- skip redundant setup.
// Engine (core/engine.hpp) remains the implementation layer underneath.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "core/formation_cache.hpp"
#include "core/strategy.hpp"

namespace parma::core {

class Session {
 public:
  class Builder {
   public:
    explicit Builder(mea::Measurement measurement)
        : measurement_(std::move(measurement)) {}

    Builder& strategy(Strategy strategy) {
      options_.strategy = strategy;
      return *this;
    }
    Builder& workers(Index workers) {
      options_.workers = workers;
      return *this;
    }
    Builder& chunk(Index chunk) {
      options_.chunk = chunk;
      return *this;
    }
    Builder& timing_mode(TimingMode mode) {
      options_.timing_mode = mode;
      return *this;
    }
    Builder& backend(exec::Backend backend) {
      options_.backend = backend;
      return *this;
    }
    Builder& keep_system(bool keep) {
      options_.keep_system = keep;
      return *this;
    }
    Builder& cost_model(const parallel::CostModel& model) {
      options_.cost_model = model;
      return *this;
    }
    Builder& options(const StrategyOptions& options) {
      options_ = options;
      return *this;
    }
    /// Share a cache across sessions explicitly (defaults to the process
    /// global cache).
    Builder& cache(std::shared_ptr<FormationCache> cache) {
      cache_ = std::move(cache);
      return *this;
    }

    /// Validates the configuration (throws InvalidOptions) and constructs
    /// the Session.
    [[nodiscard]] Session build();

   private:
    mea::Measurement measurement_;
    StrategyOptions options_;
    std::shared_ptr<FormationCache> cache_;
  };

  /// Entry point: configure a session on one measurement sweep.
  [[nodiscard]] static Builder on(mea::Measurement measurement) {
    return Builder(std::move(measurement));
  }

  [[nodiscard]] const Engine& engine() const { return engine_; }
  [[nodiscard]] const mea::DeviceSpec& spec() const { return engine_.spec(); }
  [[nodiscard]] const StrategyOptions& options() const { return options_; }
  [[nodiscard]] const std::shared_ptr<FormationCache>& cache() const { return cache_; }

  /// Topology report, memoized in the cache across sessions on this shape.
  [[nodiscard]] TopologyReport topology(bool exact_homology = false) const;

  /// Shared unknown layout of this device shape, memoized in the cache.
  [[nodiscard]] std::shared_ptr<const equations::UnknownLayout> layout() const;

  /// Forms the joint-constraint system under this session's configuration.
  [[nodiscard]] FormationResult form() const;

  /// Serving hook: forms on a caller-supplied warmed executor. The options
  /// were validated once at build(), so this path revalidates nothing per
  /// call (see Engine::form_equations overload); requires kRealThreads.
  [[nodiscard]] FormationResult form(exec::Executor& executor) const;

  /// Formation plus the sharded disk write (Fig. 9 pipeline).
  [[nodiscard]] IoResult write(const std::string& directory) const;

  /// Inverse solve: recover the resistance field. The session's worker count
  /// drives the forward sweeps unless `options` says otherwise.
  [[nodiscard]] solver::InverseResult recover(solver::InverseOptions options = {}) const;

 private:
  Session(mea::Measurement measurement, StrategyOptions options,
          std::shared_ptr<FormationCache> cache);

  Engine engine_;
  StrategyOptions options_;
  std::shared_ptr<FormationCache> cache_;
};

}  // namespace parma::core

#include "core/strategy.hpp"

#include <algorithm>
#include <sstream>

namespace parma::core {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSingleThread: return "single-thread";
    case Strategy::kParallel: return "parallel";
    case Strategy::kBalancedParallel: return "balanced-parallel";
    case Strategy::kFineGrained: return "fine-grained";
  }
  return "?";
}

const char* timing_mode_name(TimingMode mode) {
  switch (mode) {
    case TimingMode::kRealThreads: return "real-threads";
    case TimingMode::kVirtualReplay: return "virtual-replay";
  }
  return "?";
}

void StrategyOptions::validate() const {
  if (workers < 1) {
    std::ostringstream os;
    os << "invalid StrategyOptions: workers must be >= 1, got " << workers;
    throw InvalidOptions(os.str());
  }
  if (chunk < 1) {
    std::ostringstream os;
    os << "invalid StrategyOptions: chunk must be >= 1, got " << chunk;
    throw InvalidOptions(os.str());
  }
}

Index effective_workers(const StrategyOptions& options) {
  switch (options.strategy) {
    case Strategy::kSingleThread: return 1;
    case Strategy::kParallel:
    case Strategy::kBalancedParallel:
      return std::min<Index>(options.workers, kCategoryWorkerCap);
    case Strategy::kFineGrained: return options.workers;
  }
  return 1;
}

exec::Backend backend_for(const StrategyOptions& options) {
  if (options.backend != exec::Backend::kAuto) return options.backend;
  switch (options.strategy) {
    case Strategy::kSingleThread: return exec::Backend::kSerial;
    case Strategy::kParallel: return exec::Backend::kPooled;
    case Strategy::kBalancedParallel: return exec::Backend::kStealing;
    case Strategy::kFineGrained: return exec::Backend::kPooled;
  }
  return exec::Backend::kSerial;
}

}  // namespace parma::core

#include "core/strategy.hpp"

namespace parma::core {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSingleThread: return "single-thread";
    case Strategy::kParallel: return "parallel";
    case Strategy::kBalancedParallel: return "balanced-parallel";
    case Strategy::kFineGrained: return "fine-grained";
  }
  return "?";
}

}  // namespace parma::core

#include "core/formation_cache.hpp"

namespace parma::core {

TopologyReport FormationCache::topology(const Engine& engine, bool exact_homology) {
  const ShapeKey key{engine.spec().rows, engine.spec().cols, exact_homology};
  {
    std::lock_guard lock(mu_);
    const auto it = topology_.find(key);
    if (it != topology_.end()) {
      ++stats_.topology_hits;
      return it->second;
    }
    ++stats_.topology_misses;
  }
  // Analyze outside the lock (the expensive part); concurrent misses on the
  // same key do redundant work once but insert an identical report.
  const TopologyReport report = engine.analyze_topology(exact_homology);
  std::lock_guard lock(mu_);
  topology_.emplace(key, report);
  return report;
}

std::shared_ptr<const equations::UnknownLayout> FormationCache::layout(
    const mea::DeviceSpec& spec) {
  const ShapeKey key{spec.rows, spec.cols, false};
  std::lock_guard lock(mu_);
  const auto it = layouts_.find(key);
  if (it != layouts_.end()) {
    ++stats_.layout_hits;
    return it->second;
  }
  ++stats_.layout_misses;
  auto layout = std::make_shared<const equations::UnknownLayout>(spec);
  layouts_.emplace(key, layout);
  return layout;
}

std::shared_ptr<const solver::SystemSymbolic> FormationCache::system_symbolic(
    const equations::EquationSystem& system) {
  const ShapeKey key{system.layout.rows(), system.layout.cols(), false,
                     system.mask_signature};
  {
    std::lock_guard lock(mu_);
    const auto it = symbolics_.find(key);
    if (it != symbolics_.end()) {
      ++stats_.symbolic_hits;
      return it->second;
    }
    ++stats_.symbolic_misses;
  }
  // Analyze outside the lock, like topology(): concurrent misses on one key
  // do the analysis redundantly but insert interchangeable structures.
  auto symbolic = solver::SystemSymbolic::analyze(system);
  std::lock_guard lock(mu_);
  const auto [it, inserted] = symbolics_.emplace(key, symbolic);
  return inserted ? symbolic : it->second;
}

FormationCache::Stats FormationCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t FormationCache::size() const {
  std::lock_guard lock(mu_);
  return topology_.size() + layouts_.size() + symbolics_.size();
}

void FormationCache::clear() {
  std::lock_guard lock(mu_);
  topology_.clear();
  layouts_.clear();
  symbolics_.clear();
  stats_ = {};
}

const std::shared_ptr<FormationCache>& FormationCache::global() {
  static const std::shared_ptr<FormationCache> cache = std::make_shared<FormationCache>();
  return cache;
}

}  // namespace parma::core

// parma::core::Engine -- the system prototype of Section V.
//
// One Engine wraps one measurement session and exposes the paper's pipeline:
//
//   analyze_topology()      homology/Betti analysis of the device, sizing the
//                           intrinsic parallelism (Section III);
//   form_equations(opts)    the MEA + Parma components: generate the 2n^3
//                           joint-constraint equations under a strategy,
//                           reporting both the real single-core generation
//                           time and the virtual-time makespan the strategy
//                           achieves with k workers (Figs. 6-8);
//   write_equations(...)    generation plus the sharded disk write of Fig. 9;
//   distributed_formation() the MPI replay of Fig. 10;
//   recover()               the inverse solve producing the resistance field
//                           for anomaly detection.
//
// Real thread-pool execution (execute_real_threads) is provided for hosts
// with actual cores and used by the integration tests to prove the strategies
// compute identical systems.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/memory_sampler.hpp"
#include "core/strategy.hpp"
#include "equations/generator.hpp"
#include "mea/measurement.hpp"
#include "mpisim/cluster_model.hpp"
#include "solver/inverse_solver.hpp"
#include "topology/grid_complex.hpp"

namespace parma::core {

/// Homology summary of the device (Section III / IV-B).
struct TopologyReport {
  Index num_joints = 0;           ///< vertices of the wire complex (2mn)
  Index num_simplices = 0;        ///< total simplex count of the complex
  Index complex_dimension = 0;    ///< must be 1 (Proposition 1)
  Index betti0 = 0;               ///< connected components
  Index betti1 = 0;               ///< independent Kirchhoff loops
  Index cyclomatic_number = 0;    ///< |E| - |V| + components (must equal betti1)
  Index intrinsic_parallelism = 0;  ///< (m-1)(n-1), the paper's (n-1)^k
  bool proposition1_holds = false;
};

/// Result of forming the equation system under one strategy.
struct FormationResult {
  equations::EquationSystem system;
  Real generation_seconds = 0.0;      ///< real single-core time to build everything
  parallel::ScheduleResult schedule;  ///< virtual k-worker replay
  std::vector<parallel::VirtualTask> tasks;  ///< measured per-task costs
  std::uint64_t equation_bytes = 0;   ///< modeled footprint of the system

  [[nodiscard]] Real virtual_seconds() const { return schedule.makespan_seconds; }

  /// Memory CDF of the run (Fig. 8): equations accumulate as tasks finish.
  [[nodiscard]] MemoryCdf memory_cdf(std::uint64_t baseline_bytes) const;
};

/// Fig. 9: formation plus sharded write to disk.
struct IoResult {
  FormationResult formation;
  Real write_seconds = 0.0;        ///< real time spent writing all shards
  Real virtual_end_to_end = 0.0;   ///< virtual formation + parallel shard writes
  std::uint64_t bytes_written = 0;
  std::vector<std::string> shard_paths;
};

class Engine {
 public:
  explicit Engine(mea::Measurement measurement);

  [[nodiscard]] const mea::Measurement& measurement() const { return measurement_; }
  [[nodiscard]] const mea::DeviceSpec& spec() const { return measurement_.spec; }

  /// Homology/Betti analysis of the device's wire complex. For large devices
  /// the GF(2) reduction is skipped in favor of the spanning-tree cyclomatic
  /// count (identical by the rank-nullity argument verified in tests);
  /// `exact_homology` forces the GF(2) path.
  [[nodiscard]] TopologyReport analyze_topology(bool exact_homology = false) const;

  /// Forms the full joint-constraint system under `options`. Task costs are
  /// measured for real during generation; the k-worker timing is the virtual
  /// replay (see DESIGN.md Section 2).
  [[nodiscard]] FormationResult form_equations(const StrategyOptions& options) const;

  /// Fig. 9 pipeline: form, then write `workers` shards under `directory`.
  [[nodiscard]] IoResult write_equations(const std::string& directory,
                                         const StrategyOptions& options) const;

  /// Fig. 10 replay: distribute the measured tasks over `ranks` cluster
  /// ranks. Reuses a FormationResult's measured tasks.
  [[nodiscard]] mpisim::ClusterResult distributed_formation(
      const FormationResult& formation, Index ranks,
      const mpisim::ClusterCostModel& model = {}) const;

  /// Executes formation on a real ThreadPool with `workers` threads and
  /// verifies it produces the same system as the serial path; returns the
  /// wall-clock seconds it took. Intended for multi-core hosts and tests.
  Real execute_real_threads(Index workers, equations::EquationSystem* out = nullptr) const;

  /// Inverse solve: recover the resistance field (Section II-C workload).
  [[nodiscard]] solver::InverseResult recover(const solver::InverseOptions& options = {}) const;

  /// Task granularity of a strategy. The paper stresses that Parallel and
  /// Balanced Parallel are coarse-grained (Section IV-C1) while the
  /// PyMP-style strategy parallelizes inside each category loop: coarse
  /// tasks bundle a whole device row per category (4m tasks), fine tasks are
  /// one (pair x category) unit each (4mn tasks).
  enum class TaskGranularity { kCoarseRowCategory, kFinePairCategory };

  /// Builds tasks at the given granularity with measured costs, apportioning
  /// the timed generation by term counts.
  [[nodiscard]] std::vector<parallel::VirtualTask> build_tasks(
      const equations::EquationSystem& system, Real generation_seconds,
      TaskGranularity granularity) const;

 private:
  mea::Measurement measurement_;
};

}  // namespace parma::core

// parma::core::Engine -- the system prototype of Section V.
//
// One Engine wraps one measurement session and exposes the paper's pipeline:
//
//   analyze_topology()      homology/Betti analysis of the device, sizing the
//                           intrinsic parallelism (Section III);
//   form_equations(opts)    the MEA + Parma components: generate the 2n^3
//                           joint-constraint equations under a strategy. By
//                           default (TimingMode::kRealThreads) the strategy
//                           maps to a real exec::Executor backend and the
//                           reported times are wall-clock on the host's
//                           cores; TimingMode::kVirtualReplay reproduces the
//                           paper's figures by measuring single-core costs
//                           and replaying the k-worker schedule virtually
//                           (Figs. 6-8);
//   write_equations(...)    generation plus the sharded disk write of Fig. 9
//                           (shards written concurrently in real mode);
//   distributed_formation() the MPI replay of Fig. 10;
//   recover()               the inverse solve producing the resistance field
//                           for anomaly detection.
//
// Engine is the implementation layer; new code should enter through
// parma::core::Session (core/session.hpp), which adds the cross-call
// FormationCache and a builder-style configuration surface.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/memory_sampler.hpp"
#include "core/strategy.hpp"
#include "equations/generator.hpp"
#include "mea/measurement.hpp"
#include "mpisim/cluster_model.hpp"
#include "solver/inverse_solver.hpp"
#include "topology/grid_complex.hpp"

namespace parma::core {

/// Homology summary of the device (Section III / IV-B).
struct TopologyReport {
  Index num_joints = 0;           ///< vertices of the wire complex (2mn)
  Index num_simplices = 0;        ///< total simplex count of the complex
  Index complex_dimension = 0;    ///< must be 1 (Proposition 1)
  Index betti0 = 0;               ///< connected components
  Index betti1 = 0;               ///< independent Kirchhoff loops
  Index cyclomatic_number = 0;    ///< |E| - |V| + components (must equal betti1)
  Index intrinsic_parallelism = 0;  ///< (m-1)(n-1), the paper's (n-1)^k
  bool proposition1_holds = false;
};

/// Result of forming the equation system under one strategy.
struct FormationResult {
  equations::EquationSystem system;
  /// Wall-clock seconds of the formation run: the real parallel run in
  /// kRealThreads mode, the single-core generation pass in kVirtualReplay.
  Real generation_seconds = 0.0;
  /// kVirtualReplay: the deterministic k-worker replay (per-task assignment
  /// and start times). kRealThreads: a measured summary -- makespan is the
  /// real wall-clock, total_work the aggregate per-chunk CPU time, and the
  /// per-task timeline (assignment/start_time) is empty.
  parallel::ScheduleResult schedule;
  std::vector<parallel::VirtualTask> tasks;  ///< measured per-task costs
  std::uint64_t equation_bytes = 0;   ///< modeled footprint of the system
  /// Workers the strategy actually used (kParallel / kBalancedParallel cap
  /// at kCategoryWorkerCap; requests above the cap are logged).
  Index effective_workers = 1;
  TimingMode timing_mode = TimingMode::kRealThreads;

  [[nodiscard]] Real virtual_seconds() const { return schedule.makespan_seconds; }

  /// Memory CDF of the run (Fig. 8): equations accumulate as tasks finish.
  /// Requires the per-task timeline, i.e. TimingMode::kVirtualReplay.
  [[nodiscard]] MemoryCdf memory_cdf(std::uint64_t baseline_bytes) const;
};

/// Fig. 9: formation plus sharded write to disk.
struct IoResult {
  FormationResult formation;
  Real write_seconds = 0.0;        ///< real time spent writing all shards
  /// kVirtualReplay: virtual formation + modeled parallel shard writes.
  /// kRealThreads: measured formation + measured concurrent shard writes.
  Real virtual_end_to_end = 0.0;
  std::uint64_t bytes_written = 0;
  std::vector<std::string> shard_paths;
};

class Engine {
 public:
  explicit Engine(mea::Measurement measurement);

  [[nodiscard]] const mea::Measurement& measurement() const { return measurement_; }
  [[nodiscard]] const mea::DeviceSpec& spec() const { return measurement_.spec; }

  /// Homology/Betti analysis of the device's wire complex. For large devices
  /// the GF(2) reduction is skipped in favor of the spanning-tree cyclomatic
  /// count (identical by the rank-nullity argument verified in tests);
  /// `exact_homology` forces the GF(2) path.
  [[nodiscard]] TopologyReport analyze_topology(bool exact_homology = false) const;

  /// Forms the full joint-constraint system under `options`. Throws
  /// InvalidOptions for out-of-range options. Real threads by default;
  /// options.timing_mode = kVirtualReplay selects the paper-figure replay.
  [[nodiscard]] FormationResult form_equations(const StrategyOptions& options) const;

  /// Serving hook (parma::serve): forms on a caller-supplied, already-warmed
  /// executor instead of constructing one per call, and skips option
  /// re-validation -- the serving layer validates once at admission, so the
  /// per-request hot path pays neither validation nor pool construction. The
  /// executor's thread count is what actually runs (it wins over
  /// options.workers). Requires timing_mode == kRealThreads.
  [[nodiscard]] FormationResult form_equations(const StrategyOptions& options,
                                               exec::Executor& executor) const;

  /// Fig. 9 pipeline: form, then write `workers` shards under `directory`
  /// (concurrently, one shard per executor task, in real mode).
  [[nodiscard]] IoResult write_equations(const std::string& directory,
                                         const StrategyOptions& options) const;

  /// Fig. 10 replay: distribute the measured tasks over `ranks` cluster
  /// ranks. Reuses a FormationResult's measured tasks.
  [[nodiscard]] mpisim::ClusterResult distributed_formation(
      const FormationResult& formation, Index ranks,
      const mpisim::ClusterCostModel& model = {}) const;

  /// DEPRECATED shim: real-thread formation predating the Executor API.
  /// Equivalent to form_equations with kFineGrained, kRealThreads and the
  /// pooled backend; prefer Session/form_equations (see DESIGN.md migration
  /// note). Returns the wall-clock seconds; fills `out` when non-null.
  Real execute_real_threads(Index workers, equations::EquationSystem* out = nullptr) const;

  /// Inverse solve: recover the resistance field (Section II-C workload).
  [[nodiscard]] solver::InverseResult recover(const solver::InverseOptions& options = {}) const;

  /// Task granularity of a strategy. The paper stresses that Parallel and
  /// Balanced Parallel are coarse-grained (Section IV-C1) while the
  /// PyMP-style strategy parallelizes inside each category loop: coarse
  /// tasks bundle a whole device row per category (4m tasks), fine tasks are
  /// one (pair x category) unit each (4mn tasks).
  enum class TaskGranularity { kCoarseRowCategory, kFinePairCategory };

  /// Builds tasks at the given granularity with measured costs, apportioning
  /// the timed generation by term counts.
  [[nodiscard]] std::vector<parallel::VirtualTask> build_tasks(
      const equations::EquationSystem& system, Real generation_seconds,
      TaskGranularity granularity) const;

 private:
  /// `external` non-null runs on that executor (serving); null constructs
  /// one per call from the strategy's backend mapping.
  [[nodiscard]] FormationResult form_equations_real(const StrategyOptions& options,
                                                    exec::Executor* external = nullptr) const;
  [[nodiscard]] FormationResult form_equations_virtual(const StrategyOptions& options) const;

  mea::Measurement measurement_;
};

}  // namespace parma::core

#include "core/session.hpp"

namespace parma::core {

Session Session::Builder::build() {
  options_.validate();
  return Session(std::move(measurement_), options_,
                 cache_ ? std::move(cache_) : FormationCache::global());
}

Session::Session(mea::Measurement measurement, StrategyOptions options,
                 std::shared_ptr<FormationCache> cache)
    : engine_(std::move(measurement)), options_(options), cache_(std::move(cache)) {}

TopologyReport Session::topology(bool exact_homology) const {
  return cache_->topology(engine_, exact_homology);
}

std::shared_ptr<const equations::UnknownLayout> Session::layout() const {
  return cache_->layout(engine_.spec());
}

FormationResult Session::form() const { return engine_.form_equations(options_); }

FormationResult Session::form(exec::Executor& executor) const {
  return engine_.form_equations(options_, executor);
}

IoResult Session::write(const std::string& directory) const {
  return engine_.write_equations(directory, options_);
}

solver::InverseResult Session::recover(solver::InverseOptions options) const {
  if (options.workers <= 1) options.workers = options_.workers;
  return engine_.recover(options);
}

}  // namespace parma::core

// Preconditioners for the conjugate-gradient solves.
//
// CG on the Gauss-Newton normal equations JᵀJ δ = -Jᵀr is the solve-phase
// bottleneck once assembly is symbolic/numeric split: iteration count scales
// with the conditioning of JᵀJ, which degrades with device size. Each
// preconditioner here follows the same symbolic/numeric split as the system
// kernels:
//
//   * the STRUCTURE (block boundaries, scatter maps, the IC0 fill pattern)
//     is analyzed once per sparsity pattern and shared across solves --
//     solver::SystemSymbolic::analyze precomputes these plans so they ride
//     the shape-keyed core::FormationCache;
//   * the NUMBERS are refreshed in-pattern from the current matrix values
//     each outer iteration, with no allocation after the first refresh.
//
// Kinds:
//   kJacobi       diag(A)^-1 -- the historical inline default of
//                 conjugate_gradient_with. Callers represent it as a null
//                 Preconditioner*, which keeps that path bit-identical to
//                 every pre-preconditioner release.
//   kIdentity     M = I (plain CG). Useful as a baseline and for tests.
//   kBlockJacobi  block-diagonal Cholesky over caller-chosen contiguous
//                 blocks (per-electrode blocks for the full system: one block
//                 per device row of resistances, one per endpoint pair's
//                 voltage group). A block whose Cholesky breaks down falls
//                 back to its diagonal, deterministically.
//   kIc0          incomplete Cholesky on A's own lower-triangular pattern
//                 (zero fill-in), with a deterministic diagonal-shift retry
//                 ladder on breakdown and a Jacobi fallback if every shift
//                 fails. Strongest iteration reduction, highest refresh cost.
//
// apply() is deterministic and serial; the same inputs produce the same bits
// on every backend, so preconditioned CG stays bit-identical across
// serial/pooled/stealing executors (the operator products and reductions
// already are).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "linalg/aligned.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace parma::linalg {

enum class PreconditionerKind : int {
  kJacobi = 0,
  kIdentity = 1,
  kBlockJacobi = 2,
  kIc0 = 3,
};

const char* preconditioner_kind_name(PreconditionerKind kind);

/// Abstract application-side interface: z = M⁻¹ r. Implementations own their
/// factors; refresh entry points are per-concrete-type (the numeric phase).
/// apply must not allocate once the problem size has been seen.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const std::vector<Real>& r, std::vector<Real>& z) const = 0;
  [[nodiscard]] virtual PreconditionerKind kind() const = 0;
};

/// M = I: z = r. Stateless; needs no refresh.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const std::vector<Real>& r, std::vector<Real>& z) const override;
  [[nodiscard]] PreconditionerKind kind() const override {
    return PreconditionerKind::kIdentity;
  }
};

/// M = diag(A): z_i = r_i / A_ii, with the exact zero-diagonal guard
/// (d == 0 -> 1) the inline CG default has always used.
class JacobiPreconditioner final : public Preconditioner {
 public:
  void refresh(const CsrMatrix& a);
  void refresh(const DenseMatrix& a);
  void refresh_from_diagonal(const std::vector<Real>& diag);

  void apply(const std::vector<Real>& r, std::vector<Real>& z) const override;
  [[nodiscard]] PreconditionerKind kind() const override {
    return PreconditionerKind::kJacobi;
  }

 private:
  std::vector<Real> inv_diag_;
};

/// Block-diagonal preconditioner over contiguous index blocks: each block is
/// gathered into packed row-major dense storage, factored by Cholesky, and
/// applied via two triangular solves. Blocks are independent, so refresh and
/// apply orders are fixed per block -- deterministic on any backend.
class BlockJacobiPreconditioner final : public Preconditioner {
 public:
  /// Symbolic plan for sparse refreshes: which CSR slots of A fall inside a
  /// block, and where they land in the packed storage. Analyzed once per
  /// (block structure, sparsity pattern); immutable and shareable.
  struct Plan {
    std::vector<Index> block_ptr;      ///< block b spans [block_ptr[b], block_ptr[b+1])
    std::vector<Index> packed_offset;  ///< per-block offset into packed storage
    std::vector<Index> csr_slot;       ///< A-value slots inside some block
    std::vector<Index> packed_slot;    ///< matching packed destinations
    Index packed_size = 0;

    static std::shared_ptr<const Plan> analyze(std::vector<Index> block_ptr,
                                               const std::vector<Index>& row_ptr,
                                               const std::vector<Index>& col_idx);
  };

  /// Sparse-refresh construction: the plan drives refresh(const CsrMatrix&).
  explicit BlockJacobiPreconditioner(std::shared_ptr<const Plan> plan);
  /// Structure-only construction (dense refresh or refresh_packed): no CSR
  /// scatter map, just the block boundaries.
  explicit BlockJacobiPreconditioner(std::vector<Index> block_ptr);

  /// In-pattern numeric refresh: zero the packed blocks, scatter A's values
  /// through the plan, factor. Requires the Plan constructor.
  void refresh(const CsrMatrix& a);
  /// Dense refresh (the LM damped-normal path): gathers blocks directly.
  void refresh(const DenseMatrix& a);

  /// Matrix-free refresh hook: callers that never form A (the large-n
  /// operator path) fill packed_mut() -- lower triangles at packed_offset(),
  /// row-major block-local -- then call factor_packed().
  [[nodiscard]] const std::vector<Index>& block_ptr() const { return block_ptr_; }
  [[nodiscard]] const std::vector<Index>& packed_offset() const { return packed_offset_; }
  [[nodiscard]] AlignedVector<Real>& packed_mut() { return packed_; }
  void factor_packed();

  /// Number of blocks whose Cholesky broke down and run on their diagonal.
  [[nodiscard]] Index fallback_blocks() const;

  void apply(const std::vector<Real>& r, std::vector<Real>& z) const override;
  [[nodiscard]] PreconditionerKind kind() const override {
    return PreconditionerKind::kBlockJacobi;
  }

 private:
  void init_offsets();

  std::vector<Index> block_ptr_;
  std::vector<Index> packed_offset_;
  std::shared_ptr<const Plan> plan_;       ///< null for structure-only construction
  AlignedVector<Real> packed_;             ///< Cholesky factors after refresh
  std::vector<Real> diag_;                 ///< pre-factor diagonal (breakdown fallback)
  std::vector<std::uint8_t> diag_only_;    ///< per-block breakdown flag
};

/// Incomplete Cholesky with zero fill-in (IC0): L has exactly the
/// lower-triangular pattern of A. The pattern (plus the L-slot -> A-slot
/// gather map) is the symbolic phase; refresh() re-factors numerically in
/// that fixed pattern. Breakdown (a non-positive pivot, typical for
/// semi-definite normal equations) retries on A + αI with a deterministic
/// shift ladder, then falls back to Jacobi if every shift fails.
class Ic0Preconditioner final : public Preconditioner {
 public:
  struct Pattern {
    Index rows = 0;
    std::vector<Index> row_ptr;    ///< lower-triangular pattern incl. diagonal
    std::vector<Index> col_idx;    ///< ascending per row; diagonal last
    std::vector<Index> diag_slot;  ///< slot of L(i, i)
    std::vector<Index> a_slot;     ///< matching slot in A's full CSR

    /// Requires every diagonal structurally present (kernel-built normal
    /// matrices force it).
    static std::shared_ptr<const Pattern> analyze(Index rows,
                                                  const std::vector<Index>& a_row_ptr,
                                                  const std::vector<Index>& a_col_idx);
  };

  explicit Ic0Preconditioner(std::shared_ptr<const Pattern> pattern);
  /// Convenience: analyze a's pattern here (tests / one-off callers).
  explicit Ic0Preconditioner(const CsrMatrix& a);

  /// In-pattern numeric refresh. Stateless with respect to previous
  /// refreshes: the same A always produces the same factor bits.
  void refresh(const CsrMatrix& a);

  /// Diagonal shift that produced the current factor (0 = unshifted) and
  /// whether the shift ladder was exhausted (Jacobi fallback active).
  [[nodiscard]] Real shift() const { return shift_; }
  [[nodiscard]] bool jacobi_fallback() const { return jacobi_fallback_; }

  void apply(const std::vector<Real>& r, std::vector<Real>& z) const override;
  [[nodiscard]] PreconditionerKind kind() const override {
    return PreconditionerKind::kIc0;
  }

 private:
  bool try_factor(Real shift);

  std::shared_ptr<const Pattern> pattern_;
  std::vector<Real> a_lower_;        ///< gathered lower-triangular A values
  std::vector<Real> l_values_;       ///< the factor
  std::vector<Real> inv_diag_;       ///< Jacobi fallback values
  mutable std::vector<Real> y_;      ///< forward-solve scratch
  Real shift_ = 0.0;
  bool jacobi_fallback_ = false;
};

}  // namespace parma::linalg

#include "linalg/dense_solve.hpp"

#include <cmath>

namespace parma::linalg {

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  PARMA_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const Index n = lu_.rows();
  perm_.resize(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm_[static_cast<std::size_t>(i)] = i;

  for (Index k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    Index pivot = k;
    Real best = std::abs(lu_(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const Real v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-300) throw NumericalError("LU: matrix is singular");
    if (pivot != k) {
      for (Index c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[static_cast<std::size_t>(k)], perm_[static_cast<std::size_t>(pivot)]);
      perm_sign_ = -perm_sign_;
    }
    const Real inv_pivot = 1.0 / lu_(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const Real factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (Index c = k + 1; c < n; ++c) lu_(i, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<Real> LuFactorization::solve(const std::vector<Real>& b) const {
  const Index n = lu_.rows();
  PARMA_REQUIRE(static_cast<Index>(b.size()) == n, "solve: rhs size mismatch");
  std::vector<Real> x(static_cast<std::size_t>(n));
  // Apply permutation, then forward substitution with unit-diagonal L.
  for (Index i = 0; i < n; ++i) {
    Real sum = b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];
    for (Index j = 0; j < i; ++j) sum -= lu_(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum;
  }
  // Back substitution with U.
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum / lu_(i, i);
  }
  return x;
}

DenseMatrix LuFactorization::solve(const DenseMatrix& b) const {
  PARMA_REQUIRE(b.rows() == lu_.rows(), "solve: rhs rows mismatch");
  DenseMatrix x(b.rows(), b.cols());
  std::vector<Real> col(static_cast<std::size_t>(b.rows()));
  for (Index c = 0; c < b.cols(); ++c) {
    for (Index r = 0; r < b.rows(); ++r) col[static_cast<std::size_t>(r)] = b(r, c);
    const std::vector<Real> sol = solve(col);
    for (Index r = 0; r < b.rows(); ++r) x(r, c) = sol[static_cast<std::size_t>(r)];
  }
  return x;
}

Real LuFactorization::determinant() const {
  Real det = static_cast<Real>(perm_sign_);
  for (Index i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

CholeskyFactorization::CholeskyFactorization(const DenseMatrix& a) {
  PARMA_REQUIRE(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const Index n = a.rows();
  l_ = DenseMatrix(n, n);
  for (Index j = 0; j < n; ++j) {
    Real diag = a(j, j);
    for (Index k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0) throw NumericalError("Cholesky: matrix is not positive definite");
    const Real ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    const Real inv = 1.0 / ljj;
    for (Index i = j + 1; i < n; ++i) {
      Real sum = a(i, j);
      for (Index k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum * inv;
    }
  }
}

std::vector<Real> CholeskyFactorization::solve(const std::vector<Real>& b) const {
  const Index n = l_.rows();
  PARMA_REQUIRE(static_cast<Index>(b.size()) == n, "solve: rhs size mismatch");
  std::vector<Real> y(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    Real sum = b[static_cast<std::size_t>(i)];
    for (Index j = 0; j < i; ++j) sum -= l_(i, j) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = sum / l_(i, i);
  }
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = y[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) sum -= l_(j, i) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = sum / l_(i, i);
  }
  return y;
}

std::vector<Real> solve_dense(const DenseMatrix& a, const std::vector<Real>& b) {
  return LuFactorization(a).solve(b);
}

DenseMatrix invert(const DenseMatrix& a) {
  return LuFactorization(a).solve(DenseMatrix::identity(a.rows()));
}

}  // namespace parma::linalg

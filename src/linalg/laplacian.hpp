// Weighted-graph Laplacians and two-point effective resistance.
//
// With ideal wires, an n x n MEA crossbar is electrically the complete
// bipartite resistor network K_{n,n}; the measured pairwise resistance Z_ij
// is exactly the effective resistance between the wire nodes h_i and v_j.
// This header provides the independent reference implementation the
// joint-constraint formulation is validated against.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace parma::linalg {

/// An undirected weighted edge; weight is the *conductance* (1/R).
struct WeightedEdge {
  Index u = 0;
  Index v = 0;
  Real conductance = 0.0;
};

/// Dense Laplacian L with L(u,u) += w, L(u,v) -= w per edge.
DenseMatrix build_dense_laplacian(Index num_nodes, const std::vector<WeightedEdge>& edges);

/// Sparse (CSR) Laplacian.
CsrMatrix build_sparse_laplacian(Index num_nodes, const std::vector<WeightedEdge>& edges);

/// Effective-resistance oracle: factors the grounded Laplacian once and then
/// answers R_eff(s, t) queries in O(1) via the cached pseudo-inverse Gram
/// identity R_eff(s,t) = M_ss + M_tt - 2 M_st, where M is the inverse of the
/// Laplacian with the ground row/column removed.
///
/// Requires the graph to be connected; throws NumericalError otherwise.
class EffectiveResistance {
 public:
  EffectiveResistance(Index num_nodes, const std::vector<WeightedEdge>& edges);

  /// Two-point effective resistance between nodes s and t.
  [[nodiscard]] Real between(Index s, Index t) const;

  /// Node potentials when unit current enters at s and leaves at t, with the
  /// ground node at potential 0 (useful for Kirchhoff-law validation).
  [[nodiscard]] std::vector<Real> potentials(Index s, Index t) const;

  [[nodiscard]] Index num_nodes() const { return num_nodes_; }

 private:
  [[nodiscard]] Real m_entry(Index a, Index b) const;

  Index num_nodes_ = 0;
  // Inverse of the reduced Laplacian (ground = node 0 removed), size N-1.
  DenseMatrix reduced_inverse_;
};

}  // namespace parma::linalg

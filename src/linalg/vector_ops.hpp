// Free-function BLAS-1 style operations on std::vector<Real>.
//
// Vectors are plain std::vector<Real> throughout the library (Core Guidelines
// P.11: prefer the standard containers); these helpers supply the handful of
// kernels the solvers need without dragging in an external BLAS.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace parma::linalg {

/// Dot product. Requires equal sizes.
Real dot(const std::vector<Real>& a, const std::vector<Real>& b);

/// Euclidean norm.
Real norm2(const std::vector<Real>& a);

/// Max-norm.
Real norm_inf(const std::vector<Real>& a);

/// y += alpha * x. Requires equal sizes.
void axpy(Real alpha, const std::vector<Real>& x, std::vector<Real>& y);

/// x *= alpha.
void scale(Real alpha, std::vector<Real>& x);

/// out = a - b. Requires equal sizes.
std::vector<Real> subtract(const std::vector<Real>& a, const std::vector<Real>& b);

/// out = a + b. Requires equal sizes.
std::vector<Real> add(const std::vector<Real>& a, const std::vector<Real>& b);

/// Relative L2 error ||a - b|| / max(||b||, eps).
Real relative_error(const std::vector<Real>& a, const std::vector<Real>& b);

}  // namespace parma::linalg

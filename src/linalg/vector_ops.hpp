// Free-function BLAS-1 style operations on std::vector<Real>.
//
// Vectors are plain std::vector<Real> throughout the library (Core Guidelines
// P.11: prefer the standard containers); these helpers supply the handful of
// kernels the solvers need without dragging in an external BLAS.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace parma::linalg {

/// Dot product. Requires equal sizes.
Real dot(const std::vector<Real>& a, const std::vector<Real>& b);

/// Fixed chunk boundaries for ordered dot reductions. Below the threshold the
/// whole range is ONE chunk (an ordered_dot is then bit-identical to dot());
/// above it the range splits into kDotChunk-sized pieces. The boundaries are
/// a pure function of the length -- never of the backend or worker count --
/// so chunked reductions are deterministic across executors.
inline constexpr std::size_t kSerialDotThreshold = std::size_t{1} << 15;
inline constexpr std::size_t kDotChunk = std::size_t{1} << 14;

/// Number of chunks ordered_dot uses for vectors of length n.
[[nodiscard]] std::size_t dot_chunk_count(std::size_t n);

/// Partial sum of a[i]*b[i] over the c-th fixed chunk of length-n vectors.
[[nodiscard]] Real dot_chunk_partial(const std::vector<Real>& a,
                                     const std::vector<Real>& b, std::size_t c);

/// Ordered chunked dot product: per-chunk partials over the fixed boundaries
/// above, summed in chunk order. The bits are the same whether the partials
/// were computed serially (this function) or in parallel and then reduced in
/// order (ParallelCsrOperator in solver/system_kernels.hpp). `partials` is
/// caller-provided scratch so the hot path allocates nothing.
[[nodiscard]] Real ordered_dot(const std::vector<Real>& a, const std::vector<Real>& b,
                               std::vector<Real>& partials);

/// Euclidean norm.
Real norm2(const std::vector<Real>& a);

/// Max-norm.
Real norm_inf(const std::vector<Real>& a);

/// y += alpha * x. Requires equal sizes.
void axpy(Real alpha, const std::vector<Real>& x, std::vector<Real>& y);

/// x *= alpha.
void scale(Real alpha, std::vector<Real>& x);

/// out = a - b. Requires equal sizes.
std::vector<Real> subtract(const std::vector<Real>& a, const std::vector<Real>& b);

/// out = a + b. Requires equal sizes.
std::vector<Real> add(const std::vector<Real>& a, const std::vector<Real>& b);

/// Relative L2 error ||a - b|| / max(||b||, eps).
Real relative_error(const std::vector<Real>& a, const std::vector<Real>& b);

}  // namespace parma::linalg

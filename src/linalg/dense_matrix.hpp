// Row-major dense matrix with value semantics.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace parma::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix of zeros.
  DenseMatrix(Index rows, Index cols);

  /// Construct from nested initializer lists (row per inner list).
  DenseMatrix(std::initializer_list<std::initializer_list<Real>> rows);

  static DenseMatrix identity(Index n);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  Real& operator()(Index r, Index c) {
    PARMA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  Real operator()(Index r, Index c) const {
    PARMA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Raw row-major storage (size rows*cols).
  [[nodiscard]] const std::vector<Real>& data() const { return data_; }
  [[nodiscard]] std::vector<Real>& data() { return data_; }

  /// y = A x.
  [[nodiscard]] std::vector<Real> multiply(const std::vector<Real>& x) const;

  /// y = A x into a preallocated y (resized if needed) -- the zero-allocation
  /// variant the workspace CG uses.
  void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const;

  /// y = A^T x.
  [[nodiscard]] std::vector<Real> multiply_transpose(const std::vector<Real>& x) const;

  /// C = A B.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  [[nodiscard]] DenseMatrix transpose() const;

  /// Frobenius norm.
  [[nodiscard]] Real frobenius_norm() const;

  /// Max |A - B| entrywise; requires equal shapes.
  [[nodiscard]] Real max_abs_diff(const DenseMatrix& other) const;

  /// true if |A(i,j) - A(j,i)| <= tol for all i, j (requires square).
  [[nodiscard]] bool is_symmetric(Real tol = 1e-12) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

}  // namespace parma::linalg

// Cache-line-aligned vector storage for the SIMD-friendly kernel layouts.
//
// The padded CSR chunks (sparse_matrix.hpp) and the packed block-Jacobi
// factors (preconditioner.hpp) start every chunk/block on a 64-byte boundary
// so the compiler can emit aligned vector loads for the inner loops. The
// allocator only changes WHERE values live, never their order or the
// arithmetic performed on them -- alignment is invisible to the bit-identity
// contract.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace parma::linalg {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below the type's natural alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// First multiple of (kCacheLineBytes / sizeof(T)) at or above n: the next
/// element index that starts a fresh cache line.
template <typename T>
[[nodiscard]] constexpr std::size_t align_up_elements(std::size_t n) {
  constexpr std::size_t per_line = kCacheLineBytes / sizeof(T);
  static_assert(per_line > 0, "type larger than a cache line");
  return ((n + per_line - 1) / per_line) * per_line;
}

}  // namespace parma::linalg

#include "linalg/laplacian.hpp"

#include "common/require.hpp"
#include "linalg/dense_solve.hpp"

namespace parma::linalg {
namespace {

void check_edges(Index num_nodes, const std::vector<WeightedEdge>& edges) {
  PARMA_REQUIRE(num_nodes > 0, "graph needs at least one node");
  for (const auto& e : edges) {
    PARMA_REQUIRE(e.u >= 0 && e.u < num_nodes && e.v >= 0 && e.v < num_nodes,
                  "edge endpoint out of range");
    PARMA_REQUIRE(e.u != e.v, "self-loops carry no current");
    PARMA_REQUIRE(e.conductance > 0.0, "conductance must be positive");
  }
}

}  // namespace

DenseMatrix build_dense_laplacian(Index num_nodes, const std::vector<WeightedEdge>& edges) {
  check_edges(num_nodes, edges);
  DenseMatrix l(num_nodes, num_nodes);
  for (const auto& e : edges) {
    l(e.u, e.u) += e.conductance;
    l(e.v, e.v) += e.conductance;
    l(e.u, e.v) -= e.conductance;
    l(e.v, e.u) -= e.conductance;
  }
  return l;
}

CsrMatrix build_sparse_laplacian(Index num_nodes, const std::vector<WeightedEdge>& edges) {
  check_edges(num_nodes, edges);
  CooBuilder builder(num_nodes, num_nodes);
  for (const auto& e : edges) {
    builder.add(e.u, e.u, e.conductance);
    builder.add(e.v, e.v, e.conductance);
    builder.add(e.u, e.v, -e.conductance);
    builder.add(e.v, e.u, -e.conductance);
  }
  return builder.build();
}

EffectiveResistance::EffectiveResistance(Index num_nodes,
                                         const std::vector<WeightedEdge>& edges)
    : num_nodes_(num_nodes) {
  check_edges(num_nodes, edges);
  PARMA_REQUIRE(num_nodes >= 2, "effective resistance needs >= 2 nodes");
  const DenseMatrix l = build_dense_laplacian(num_nodes, edges);
  // Ground node 0: drop its row and column. The reduced Laplacian is SPD iff
  // the graph is connected, which Cholesky detects for us.
  const Index m = num_nodes - 1;
  DenseMatrix reduced(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) reduced(i, j) = l(i + 1, j + 1);
  }
  try {
    const CholeskyFactorization chol(reduced);
    // Invert by solving against unit vectors; m is O(2n) for MEA work.
    reduced_inverse_ = DenseMatrix(m, m);
    std::vector<Real> e(static_cast<std::size_t>(m), 0.0);
    for (Index j = 0; j < m; ++j) {
      e[static_cast<std::size_t>(j)] = 1.0;
      const std::vector<Real> col = chol.solve(e);
      e[static_cast<std::size_t>(j)] = 0.0;
      for (Index i = 0; i < m; ++i) reduced_inverse_(i, j) = col[static_cast<std::size_t>(i)];
    }
  } catch (const NumericalError&) {
    throw NumericalError(
        "effective resistance: graph is disconnected (reduced Laplacian not SPD)");
  }
}

Real EffectiveResistance::m_entry(Index a, Index b) const {
  // Ground node 0 has zero pseudo-potential by construction.
  if (a == 0 || b == 0) return 0.0;
  return reduced_inverse_(a - 1, b - 1);
}

Real EffectiveResistance::between(Index s, Index t) const {
  PARMA_REQUIRE(s >= 0 && s < num_nodes_ && t >= 0 && t < num_nodes_,
                "node index out of range");
  PARMA_REQUIRE(s != t, "effective resistance needs distinct nodes");
  return m_entry(s, s) + m_entry(t, t) - 2.0 * m_entry(s, t);
}

std::vector<Real> EffectiveResistance::potentials(Index s, Index t) const {
  PARMA_REQUIRE(s >= 0 && s < num_nodes_ && t >= 0 && t < num_nodes_,
                "node index out of range");
  std::vector<Real> phi(static_cast<std::size_t>(num_nodes_), 0.0);
  for (Index v = 0; v < num_nodes_; ++v) {
    phi[static_cast<std::size_t>(v)] = m_entry(v, s) - m_entry(v, t);
  }
  return phi;
}

}  // namespace parma::linalg

#include "linalg/iterative.hpp"

#include <cmath>

#include "common/require.hpp"
#include "fault/injector.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::linalg {

namespace {

// Shared CG body over any matrix with multiply(vector); `diag` is the main
// diagonal for the Jacobi preconditioner.
template <typename Matrix>
IterativeResult cg_impl(const Matrix& a, std::vector<Real> diag,
                        const std::vector<Real>& b, const IterativeOptions& options,
                        std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  PARMA_REQUIRE(static_cast<Index>(b.size()) == a.rows(), "CG rhs size mismatch");
  const std::size_t n = b.size();

  IterativeResult result;
  result.x = x0.empty() ? std::vector<Real>(n, 0.0) : std::move(x0);
  PARMA_REQUIRE(result.x.size() == n, "CG x0 size mismatch");

  // Chaos hook: a fired kCgNonConvergence point reports the seed iterate as
  // non-converged with a full residual, exactly what an ill-conditioned
  // system stalling at max_iterations looks like to the caller.
  if (fault::should_fire(fault::Point::kCgNonConvergence)) {
    result.relative_residual = 1.0;
    result.converged = false;
    return result;
  }

  const Real norm_b = norm2(b);
  if (norm_b == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A); fall back to identity on zero diagonal
  // (e.g. a grounded Laplacian row removed elsewhere).
  std::vector<Real> inv_diag = std::move(diag);
  for (Real& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<Real> r = subtract(b, a.multiply(result.x));
  std::vector<Real> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  std::vector<Real> p = z;
  Real rz = dot(r, z);

  for (Index it = 0; it < options.max_iterations; ++it) {
    result.relative_residual = norm2(r) / norm_b;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    const std::vector<Real> ap = a.multiply(p);
    const Real pap = dot(p, ap);
    if (pap <= 0.0) {
      // Indefinite or numerically null direction: stop with current iterate.
      result.iterations = it;
      return result;
    }
    const Real alpha = rz / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const Real rz_new = dot(r, z);
    const Real beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.iterations = options.max_iterations;
  result.relative_residual = norm2(r) / norm_b;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

}  // namespace

IterativeResult conjugate_gradient(const CsrMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options,
                                   std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  return cg_impl(a, a.diagonal(), b, options, std::move(x0));
}

IterativeResult conjugate_gradient(const DenseMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options,
                                   std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  std::vector<Real> diag(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) diag[static_cast<std::size_t>(i)] = a(i, i);
  return cg_impl(a, std::move(diag), b, options, std::move(x0));
}

IterativeResult gauss_seidel(const CsrMatrix& a, const std::vector<Real>& b,
                             const IterativeOptions& options, std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "Gauss-Seidel needs a square matrix");
  PARMA_REQUIRE(static_cast<Index>(b.size()) == a.rows(), "rhs size mismatch");
  const std::size_t n = b.size();

  IterativeResult result;
  result.x = x0.empty() ? std::vector<Real>(n, 0.0) : std::move(x0);
  PARMA_REQUIRE(result.x.size() == n, "x0 size mismatch");

  const Real norm_b = norm2(b);
  if (norm_b == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  for (Index it = 0; it < options.max_iterations; ++it) {
    for (std::size_t r = 0; r < n; ++r) {
      Real diag = 0.0;
      Real sum = b[r];
      for (Index k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const auto c = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]);
        const Real v = values[static_cast<std::size_t>(k)];
        if (c == r) {
          diag = v;
        } else {
          sum -= v * result.x[c];
        }
      }
      if (diag == 0.0) throw NumericalError("Gauss-Seidel: zero diagonal entry");
      result.x[r] = sum / diag;
    }
    const std::vector<Real> residual = subtract(b, a.multiply(result.x));
    result.relative_residual = norm2(residual) / norm_b;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = it + 1;
      return result;
    }
  }
  result.iterations = options.max_iterations;
  return result;
}

}  // namespace parma::linalg

#include "linalg/iterative.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "fault/injector.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::linalg {

namespace {

// Shared CG body over any matrix with multiply(vector); `diag` is the main
// diagonal for the Jacobi preconditioner.
template <typename Matrix>
IterativeResult cg_impl(const Matrix& a, std::vector<Real> diag,
                        const std::vector<Real>& b, const IterativeOptions& options,
                        std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  PARMA_REQUIRE(static_cast<Index>(b.size()) == a.rows(), "CG rhs size mismatch");
  const std::size_t n = b.size();

  IterativeResult result;
  result.x = x0.empty() ? std::vector<Real>(n, 0.0) : std::move(x0);
  PARMA_REQUIRE(result.x.size() == n, "CG x0 size mismatch");

  // Chaos hook: a fired kCgNonConvergence point reports the seed iterate as
  // non-converged with a full residual, exactly what an ill-conditioned
  // system stalling at max_iterations looks like to the caller.
  if (fault::should_fire(fault::Point::kCgNonConvergence)) {
    result.relative_residual = 1.0;
    result.converged = false;
    return result;
  }

  const Real norm_b = norm2(b);
  if (norm_b == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A); fall back to identity on zero diagonal
  // (e.g. a grounded Laplacian row removed elsewhere).
  std::vector<Real> inv_diag = std::move(diag);
  for (Real& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<Real> r = subtract(b, a.multiply(result.x));
  std::vector<Real> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  std::vector<Real> p = z;
  Real rz = dot(r, z);

  for (Index it = 0; it < options.max_iterations; ++it) {
    result.relative_residual = norm2(r) / norm_b;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    const std::vector<Real> ap = a.multiply(p);
    const Real pap = dot(p, ap);
    if (pap <= 0.0) {
      // Indefinite or numerically null direction: stop with current iterate.
      result.iterations = it;
      return result;
    }
    const Real alpha = rz / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const Real rz_new = dot(r, z);
    const Real beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.iterations = options.max_iterations;
  result.relative_residual = norm2(r) / norm_b;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

}  // namespace

IterativeResult conjugate_gradient(const CsrMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options,
                                   std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  return cg_impl(a, a.diagonal(), b, options, std::move(x0));
}

IterativeResult conjugate_gradient(const DenseMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options,
                                   std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  std::vector<Real> diag(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) diag[static_cast<std::size_t>(i)] = a(i, i);
  return cg_impl(a, std::move(diag), b, options, std::move(x0));
}

IterativeResult conjugate_gradient_mixed(const CsrMatrix& a, const std::vector<Real>& b,
                                         const IterativeOptions& options,
                                         MixedPrecisionWorkspace& ws,
                                         std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  PARMA_REQUIRE(static_cast<Index>(b.size()) == a.rows(), "CG rhs size mismatch");
  const std::size_t n = b.size();

  IterativeResult result;
  result.x = x0.empty() ? std::vector<Real>(n, 0.0) : std::move(x0);
  PARMA_REQUIRE(result.x.size() == n, "CG x0 size mismatch");

  const Real norm_b = norm2(b);
  if (norm_b == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Float shadow of A's values (pattern arrays are shared with the double
  // matrix) and the float Jacobi preconditioner.
  const auto& values = a.values();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  ws.values.resize(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    ws.values[k] = static_cast<float>(values[k]);
  }
  ws.inv_diagf.assign(n, 1.0f);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k = row_ptr[static_cast<std::size_t>(r)];
         k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      if (col_idx[static_cast<std::size_t>(k)] == r) {
        const float d = ws.values[static_cast<std::size_t>(k)];
        ws.inv_diagf[static_cast<std::size_t>(r)] = (d != 0.0f) ? 1.0f / d : 1.0f;
        break;
      }
    }
  }
  const auto spmv_float = [&](const std::vector<float>& x, std::vector<float>& y) {
    y.resize(n);
    for (Index r = 0; r < a.rows(); ++r) {
      float sum = 0.0f;
      for (Index k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        sum += ws.values[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  };

  // Outer double iterative refinement: r = b - A x in double, one float CG
  // round on the scaled residual, x += correction. The float inner tolerance
  // is bounded below by single-precision resolution; the DOUBLE residual is
  // the only convergence authority.
  constexpr Index kMaxOuter = 50;
  const Real inner_tolerance = std::max(options.tolerance, Real{1e-6});
  Index inner_total = 0;
  Real previous_rel = std::numeric_limits<Real>::infinity();
  for (Index outer = 0; outer < kMaxOuter; ++outer) {
    a.multiply_into(result.x, ws.ax);
    ws.residual.resize(n);
    for (std::size_t i = 0; i < n; ++i) ws.residual[i] = b[i] - ws.ax[i];
    const Real norm_r = norm2(ws.residual);
    result.relative_residual = norm_r / norm_b;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = inner_total;
      return result;
    }
    // Refinement must make real progress per round or float resolution has
    // been exhausted -- bail to the double fallback instead of spinning.
    if (!(result.relative_residual < 0.5 * previous_rel)) break;
    previous_rel = result.relative_residual;
    if (inner_total >= options.max_iterations) break;

    // Inner float CG on A c = r / ||r|| (unit-scaled into float range).
    ws.bf.resize(n);
    const Real inv_norm_r = 1.0 / norm_r;
    for (std::size_t i = 0; i < n; ++i) {
      ws.bf[i] = static_cast<float>(ws.residual[i] * inv_norm_r);
    }
    ws.xf.assign(n, 0.0f);
    ws.rf = ws.bf;
    ws.zf.resize(n);
    for (std::size_t i = 0; i < n; ++i) ws.zf[i] = ws.inv_diagf[i] * ws.rf[i];
    ws.pf = ws.zf;
    float rz = 0.0f;
    for (std::size_t i = 0; i < n; ++i) rz += ws.rf[i] * ws.zf[i];
    const Index inner_budget = options.max_iterations - inner_total;
    bool inner_ok = false;
    for (Index it = 0; it < inner_budget; ++it) {
      float rr = 0.0f;
      for (std::size_t i = 0; i < n; ++i) rr += ws.rf[i] * ws.rf[i];
      ++inner_total;
      if (std::sqrt(static_cast<Real>(rr)) <= inner_tolerance) {
        inner_ok = true;
        break;
      }
      spmv_float(ws.pf, ws.apf);
      float pap = 0.0f;
      for (std::size_t i = 0; i < n; ++i) pap += ws.pf[i] * ws.apf[i];
      if (!(pap > 0.0f) || !std::isfinite(pap)) {
        inner_ok = it > 0;  // keep partial progress; a first-step breakdown is fatal
        break;
      }
      const float alpha = rz / pap;
      for (std::size_t i = 0; i < n; ++i) ws.xf[i] += alpha * ws.pf[i];
      for (std::size_t i = 0; i < n; ++i) ws.rf[i] -= alpha * ws.apf[i];
      for (std::size_t i = 0; i < n; ++i) ws.zf[i] = ws.inv_diagf[i] * ws.rf[i];
      float rz_new = 0.0f;
      for (std::size_t i = 0; i < n; ++i) rz_new += ws.rf[i] * ws.zf[i];
      const float beta = rz_new / rz;
      rz = rz_new;
      for (std::size_t i = 0; i < n; ++i) ws.pf[i] = ws.zf[i] + beta * ws.pf[i];
      inner_ok = true;
    }
    if (!inner_ok) break;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
      const Real c = norm_r * static_cast<Real>(ws.xf[i]);
      if (!std::isfinite(c)) {
        finite = false;
        break;
      }
      result.x[i] += c;
    }
    if (!finite) break;
  }

  // Accuracy gate missed: report the final double residual, not converged.
  a.multiply_into(result.x, ws.ax);
  ws.residual.resize(n);
  for (std::size_t i = 0; i < n; ++i) ws.residual[i] = b[i] - ws.ax[i];
  result.relative_residual = norm2(ws.residual) / norm_b;
  result.converged = result.relative_residual <= options.tolerance;
  result.iterations = inner_total;
  return result;
}

IterativeResult gauss_seidel(const CsrMatrix& a, const std::vector<Real>& b,
                             const IterativeOptions& options, std::vector<Real> x0) {
  PARMA_REQUIRE(a.rows() == a.cols(), "Gauss-Seidel needs a square matrix");
  PARMA_REQUIRE(static_cast<Index>(b.size()) == a.rows(), "rhs size mismatch");
  const std::size_t n = b.size();

  IterativeResult result;
  result.x = x0.empty() ? std::vector<Real>(n, 0.0) : std::move(x0);
  PARMA_REQUIRE(result.x.size() == n, "x0 size mismatch");

  const Real norm_b = norm2(b);
  if (norm_b == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  for (Index it = 0; it < options.max_iterations; ++it) {
    for (std::size_t r = 0; r < n; ++r) {
      Real diag = 0.0;
      Real sum = b[r];
      for (Index k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const auto c = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]);
        const Real v = values[static_cast<std::size_t>(k)];
        if (c == r) {
          diag = v;
        } else {
          sum -= v * result.x[c];
        }
      }
      if (diag == 0.0) throw NumericalError("Gauss-Seidel: zero diagonal entry");
      result.x[r] = sum / diag;
    }
    const std::vector<Real> residual = subtract(b, a.multiply(result.x));
    result.relative_residual = norm2(residual) / norm_b;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = it + 1;
      return result;
    }
  }
  result.iterations = options.max_iterations;
  return result;
}

}  // namespace parma::linalg

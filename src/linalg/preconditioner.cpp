#include "linalg/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace parma::linalg {

namespace {

// The inline-Jacobi guard conjugate_gradient_with has always used: a zero
// diagonal preconditions with 1 instead of dividing by zero.
inline Real guarded_inverse(Real d) { return (d != 0.0) ? 1.0 / d : 1.0; }

std::vector<Real> csr_diagonal(const CsrMatrix& a) {
  PARMA_REQUIRE(a.rows() == a.cols(), "preconditioner needs a square matrix");
  return a.diagonal();
}

// Block id of row `i` given contiguous block boundaries.
Index block_of(const std::vector<Index>& block_ptr, Index i) {
  const auto it = std::upper_bound(block_ptr.begin(), block_ptr.end(), i);
  PARMA_ASSERT(it != block_ptr.begin() && it != block_ptr.end());
  return static_cast<Index>(it - block_ptr.begin()) - 1;
}

}  // namespace

const char* preconditioner_kind_name(PreconditionerKind kind) {
  switch (kind) {
    case PreconditionerKind::kJacobi: return "jacobi";
    case PreconditionerKind::kIdentity: return "identity";
    case PreconditionerKind::kBlockJacobi: return "block_jacobi";
    case PreconditionerKind::kIc0: return "ic0";
  }
  return "?";
}

void IdentityPreconditioner::apply(const std::vector<Real>& r, std::vector<Real>& z) const {
  z.resize(r.size());
  std::copy(r.begin(), r.end(), z.begin());
}

void JacobiPreconditioner::refresh(const CsrMatrix& a) {
  refresh_from_diagonal(csr_diagonal(a));
}

void JacobiPreconditioner::refresh(const DenseMatrix& a) {
  PARMA_REQUIRE(a.rows() == a.cols(), "preconditioner needs a square matrix");
  inv_diag_.resize(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) {
    inv_diag_[static_cast<std::size_t>(i)] = guarded_inverse(a(i, i));
  }
}

void JacobiPreconditioner::refresh_from_diagonal(const std::vector<Real>& diag) {
  inv_diag_.resize(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) inv_diag_[i] = guarded_inverse(diag[i]);
}

void JacobiPreconditioner::apply(const std::vector<Real>& r, std::vector<Real>& z) const {
  PARMA_REQUIRE(r.size() == inv_diag_.size(), "Jacobi preconditioner size mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
}

std::shared_ptr<const BlockJacobiPreconditioner::Plan> BlockJacobiPreconditioner::Plan::analyze(
    std::vector<Index> block_ptr, const std::vector<Index>& row_ptr,
    const std::vector<Index>& col_idx) {
  auto plan = std::make_shared<Plan>();
  plan->block_ptr = std::move(block_ptr);
  const auto& bp = plan->block_ptr;
  PARMA_REQUIRE(bp.size() >= 2 && bp.front() == 0, "block_ptr must start at 0");
  const Index rows = static_cast<Index>(row_ptr.size()) - 1;
  PARMA_REQUIRE(bp.back() == rows, "block_ptr must end at the matrix dimension");

  const Index blocks = static_cast<Index>(bp.size()) - 1;
  plan->packed_offset.resize(static_cast<std::size_t>(blocks));
  std::size_t offset = 0;
  for (Index b = 0; b < blocks; ++b) {
    const Index bs = bp[static_cast<std::size_t>(b) + 1] - bp[static_cast<std::size_t>(b)];
    PARMA_REQUIRE(bs > 0, "block_ptr must be strictly increasing");
    plan->packed_offset[static_cast<std::size_t>(b)] = static_cast<Index>(offset);
    offset = align_up_elements<Real>(offset + static_cast<std::size_t>(bs) *
                                                  static_cast<std::size_t>(bs));
  }
  plan->packed_size = static_cast<Index>(offset);

  // Lower-triangle scatter map: every A slot (i, c) with c and i in the same
  // block and c <= i lands at its packed row-major block-local position.
  for (Index i = 0; i < rows; ++i) {
    const Index b = block_of(bp, i);
    const Index lo = bp[static_cast<std::size_t>(b)];
    const Index bs = bp[static_cast<std::size_t>(b) + 1] - lo;
    const Index base =
        plan->packed_offset[static_cast<std::size_t>(b)] + (i - lo) * bs - lo;
    for (Index s = row_ptr[static_cast<std::size_t>(i)];
         s < row_ptr[static_cast<std::size_t>(i) + 1]; ++s) {
      const Index c = col_idx[static_cast<std::size_t>(s)];
      if (c < lo || c > i) continue;
      plan->csr_slot.push_back(s);
      plan->packed_slot.push_back(base + c);
    }
  }
  return plan;
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(std::shared_ptr<const Plan> plan)
    : plan_(std::move(plan)) {
  PARMA_REQUIRE(plan_ != nullptr, "BlockJacobiPreconditioner needs a plan");
  block_ptr_ = plan_->block_ptr;
  packed_offset_ = plan_->packed_offset;
  packed_.resize(static_cast<std::size_t>(plan_->packed_size), 0.0);
  init_offsets();
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(std::vector<Index> block_ptr)
    : block_ptr_(std::move(block_ptr)) {
  PARMA_REQUIRE(block_ptr_.size() >= 2 && block_ptr_.front() == 0,
                "block_ptr must start at 0");
  const Index blocks = static_cast<Index>(block_ptr_.size()) - 1;
  packed_offset_.resize(static_cast<std::size_t>(blocks));
  std::size_t offset = 0;
  for (Index b = 0; b < blocks; ++b) {
    const Index bs = block_ptr_[static_cast<std::size_t>(b) + 1] -
                     block_ptr_[static_cast<std::size_t>(b)];
    PARMA_REQUIRE(bs > 0, "block_ptr must be strictly increasing");
    packed_offset_[static_cast<std::size_t>(b)] = static_cast<Index>(offset);
    offset = align_up_elements<Real>(offset + static_cast<std::size_t>(bs) *
                                                  static_cast<std::size_t>(bs));
  }
  packed_.resize(offset, 0.0);
  init_offsets();
}

void BlockJacobiPreconditioner::init_offsets() {
  const std::size_t n = static_cast<std::size_t>(block_ptr_.back());
  diag_.assign(n, 0.0);
  diag_only_.assign(block_ptr_.size() - 1, 0);
}

void BlockJacobiPreconditioner::refresh(const CsrMatrix& a) {
  PARMA_REQUIRE(plan_ != nullptr,
                "sparse refresh needs the Plan constructor (CSR scatter map)");
  PARMA_REQUIRE(a.rows() == block_ptr_.back(), "block preconditioner size mismatch");
  std::fill(packed_.begin(), packed_.end(), 0.0);
  const auto& avals = a.values();
  const std::size_t nnz = plan_->csr_slot.size();
  for (std::size_t k = 0; k < nnz; ++k) {
    packed_[static_cast<std::size_t>(plan_->packed_slot[k])] =
        avals[static_cast<std::size_t>(plan_->csr_slot[k])];
  }
  factor_packed();
}

void BlockJacobiPreconditioner::refresh(const DenseMatrix& a) {
  PARMA_REQUIRE(a.rows() == block_ptr_.back() && a.rows() == a.cols(),
                "block preconditioner size mismatch");
  std::fill(packed_.begin(), packed_.end(), 0.0);
  const Index blocks = static_cast<Index>(block_ptr_.size()) - 1;
  for (Index b = 0; b < blocks; ++b) {
    const Index lo = block_ptr_[static_cast<std::size_t>(b)];
    const Index bs = block_ptr_[static_cast<std::size_t>(b) + 1] - lo;
    Real* m = packed_.data() + packed_offset_[static_cast<std::size_t>(b)];
    for (Index li = 0; li < bs; ++li) {
      for (Index lc = 0; lc <= li; ++lc) {
        m[li * bs + lc] = a(lo + li, lo + lc);
      }
    }
  }
  factor_packed();
}

void BlockJacobiPreconditioner::factor_packed() {
  const Index blocks = static_cast<Index>(block_ptr_.size()) - 1;
  for (Index b = 0; b < blocks; ++b) {
    const Index lo = block_ptr_[static_cast<std::size_t>(b)];
    const Index bs = block_ptr_[static_cast<std::size_t>(b) + 1] - lo;
    Real* m = packed_.data() + packed_offset_[static_cast<std::size_t>(b)];
    // Stash the raw diagonal before factoring: the per-block breakdown
    // fallback needs it (and overwrites it with its inverse below).
    for (Index li = 0; li < bs; ++li) {
      diag_[static_cast<std::size_t>(lo + li)] = m[li * bs + li];
    }
    diag_only_[static_cast<std::size_t>(b)] = 0;
    // In-place Cholesky on the lower triangle (row-major).
    bool ok = true;
    for (Index j = 0; j < bs && ok; ++j) {
      Real d = m[j * bs + j];
      for (Index k = 0; k < j; ++k) d -= m[j * bs + k] * m[j * bs + k];
      if (!(d > 0.0) || !std::isfinite(d)) {
        ok = false;
        break;
      }
      const Real ljj = std::sqrt(d);
      m[j * bs + j] = ljj;
      for (Index i = j + 1; i < bs; ++i) {
        Real s = m[i * bs + j];
        for (Index k = 0; k < j; ++k) s -= m[i * bs + k] * m[j * bs + k];
        m[i * bs + j] = s / ljj;
      }
    }
    if (!ok) {
      // Deterministic degradation: this block preconditions with its raw
      // diagonal only. diag_ entries of a broken block hold the INVERSE.
      diag_only_[static_cast<std::size_t>(b)] = 1;
      for (Index li = 0; li < bs; ++li) {
        auto& d = diag_[static_cast<std::size_t>(lo + li)];
        d = guarded_inverse(std::isfinite(d) ? d : 0.0);
      }
    }
  }
}

Index BlockJacobiPreconditioner::fallback_blocks() const {
  Index count = 0;
  for (std::uint8_t f : diag_only_) count += f;
  return count;
}

void BlockJacobiPreconditioner::apply(const std::vector<Real>& r, std::vector<Real>& z) const {
  PARMA_REQUIRE(static_cast<Index>(r.size()) == block_ptr_.back(),
                "block preconditioner size mismatch");
  z.resize(r.size());
  const Index blocks = static_cast<Index>(block_ptr_.size()) - 1;
  for (Index b = 0; b < blocks; ++b) {
    const Index lo = block_ptr_[static_cast<std::size_t>(b)];
    const Index bs = block_ptr_[static_cast<std::size_t>(b) + 1] - lo;
    if (diag_only_[static_cast<std::size_t>(b)] != 0) {
      for (Index li = 0; li < bs; ++li) {
        const std::size_t g = static_cast<std::size_t>(lo + li);
        z[g] = diag_[g] * r[g];
      }
      continue;
    }
    const Real* m = packed_.data() + packed_offset_[static_cast<std::size_t>(b)];
    Real* zb = z.data() + lo;
    const Real* rb = r.data() + lo;
    // Forward solve L y = r (y stored in z), then backward solve Lᵀ z = y.
    for (Index li = 0; li < bs; ++li) {
      Real s = rb[li];
      for (Index k = 0; k < li; ++k) s -= m[li * bs + k] * zb[k];
      zb[li] = s / m[li * bs + li];
    }
    for (Index li = bs - 1; li >= 0; --li) {
      Real s = zb[li];
      for (Index k = li + 1; k < bs; ++k) s -= m[k * bs + li] * zb[k];
      zb[li] = s / m[li * bs + li];
    }
  }
}

std::shared_ptr<const Ic0Preconditioner::Pattern> Ic0Preconditioner::Pattern::analyze(
    Index rows, const std::vector<Index>& a_row_ptr, const std::vector<Index>& a_col_idx) {
  auto pattern = std::make_shared<Pattern>();
  pattern->rows = rows;
  pattern->row_ptr.resize(static_cast<std::size_t>(rows) + 1);
  pattern->row_ptr[0] = 0;
  for (Index i = 0; i < rows; ++i) {
    bool saw_diag = false;
    for (Index s = a_row_ptr[static_cast<std::size_t>(i)];
         s < a_row_ptr[static_cast<std::size_t>(i) + 1]; ++s) {
      const Index c = a_col_idx[static_cast<std::size_t>(s)];
      if (c > i) break;  // columns ascend; the rest is upper-triangular
      pattern->col_idx.push_back(c);
      pattern->a_slot.push_back(s);
      saw_diag = saw_diag || c == i;
    }
    PARMA_REQUIRE(saw_diag, "IC0 needs every diagonal structurally present");
    pattern->row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(pattern->col_idx.size());
  }
  pattern->diag_slot.resize(static_cast<std::size_t>(rows));
  for (Index i = 0; i < rows; ++i) {
    // Ascending columns put the diagonal last in its row.
    pattern->diag_slot[static_cast<std::size_t>(i)] =
        pattern->row_ptr[static_cast<std::size_t>(i) + 1] - 1;
  }
  return pattern;
}

Ic0Preconditioner::Ic0Preconditioner(std::shared_ptr<const Pattern> pattern)
    : pattern_(std::move(pattern)) {
  PARMA_REQUIRE(pattern_ != nullptr, "Ic0Preconditioner needs a pattern");
  a_lower_.resize(pattern_->col_idx.size());
  l_values_.resize(pattern_->col_idx.size());
  inv_diag_.resize(static_cast<std::size_t>(pattern_->rows));
  y_.resize(static_cast<std::size_t>(pattern_->rows));
}

Ic0Preconditioner::Ic0Preconditioner(const CsrMatrix& a)
    : Ic0Preconditioner(Pattern::analyze(a.rows(), a.row_ptr(), a.col_idx())) {
  PARMA_REQUIRE(a.rows() == a.cols(), "preconditioner needs a square matrix");
}

void Ic0Preconditioner::refresh(const CsrMatrix& a) {
  PARMA_REQUIRE(a.rows() == pattern_->rows, "IC0 preconditioner size mismatch");
  const auto& avals = a.values();
  for (std::size_t k = 0; k < a_lower_.size(); ++k) {
    a_lower_[k] = avals[static_cast<std::size_t>(pattern_->a_slot[k])];
  }
  Real max_abs_diag = 0.0;
  for (Index i = 0; i < pattern_->rows; ++i) {
    max_abs_diag = std::max(
        max_abs_diag, std::abs(a_lower_[static_cast<std::size_t>(
                          pattern_->diag_slot[static_cast<std::size_t>(i)])]));
  }
  // Deterministic shift ladder: unshifted first, then A + αI with α growing
  // 10x from 1e-8 * max|diag|. Same values in, same factor bits out.
  const Real base = std::max(Real{1e-8} * max_abs_diag, Real{1e-300});
  const Real shifts[] = {0.0, base, 10.0 * base, 100.0 * base, 1000.0 * base};
  jacobi_fallback_ = false;
  for (const Real shift : shifts) {
    if (try_factor(shift)) {
      shift_ = shift;
      return;
    }
  }
  jacobi_fallback_ = true;
  shift_ = 0.0;
  for (Index i = 0; i < pattern_->rows; ++i) {
    inv_diag_[static_cast<std::size_t>(i)] = guarded_inverse(a_lower_[static_cast<std::size_t>(
        pattern_->diag_slot[static_cast<std::size_t>(i)])]);
  }
}

bool Ic0Preconditioner::try_factor(Real shift) {
  const Pattern& p = *pattern_;
  const Index* cols = p.col_idx.data();
  Real* l = l_values_.data();
  std::copy(a_lower_.begin(), a_lower_.end(), l_values_.begin());
  for (Index i = 0; i < p.rows; ++i) {
    l[p.diag_slot[static_cast<std::size_t>(i)]] += shift;
  }
  for (Index i = 0; i < p.rows; ++i) {
    const Index begin_i = p.row_ptr[static_cast<std::size_t>(i)];
    const Index end_i = p.row_ptr[static_cast<std::size_t>(i) + 1];
    for (Index s = begin_i; s < end_i; ++s) {
      const Index k = cols[s];
      // Pattern-restricted dot of L(i, :k) and L(k, :k): two-pointer merge
      // over the sorted column lists.
      Real sum = 0.0;
      Index pi = begin_i;
      Index pk = p.row_ptr[static_cast<std::size_t>(k)];
      const Index pi_end = s;  // cols of row i strictly below k
      const Index pk_end = p.diag_slot[static_cast<std::size_t>(k)];
      while (pi < pi_end && pk < pk_end) {
        const Index ci = cols[pi];
        const Index ck = cols[pk];
        if (ci == ck) {
          sum += l[pi] * l[pk];
          ++pi;
          ++pk;
        } else if (ci < ck) {
          ++pi;
        } else {
          ++pk;
        }
      }
      if (k < i) {
        l[s] = (l[s] - sum) / l[pk_end];  // pk_end is L(k, k)'s slot
      } else {
        const Real d = l[s] - sum;
        if (!(d > 0.0) || !std::isfinite(d)) return false;
        l[s] = std::sqrt(d);
      }
    }
  }
  return true;
}

void Ic0Preconditioner::apply(const std::vector<Real>& r, std::vector<Real>& z) const {
  const Pattern& p = *pattern_;
  PARMA_REQUIRE(static_cast<Index>(r.size()) == p.rows, "IC0 preconditioner size mismatch");
  z.resize(r.size());
  if (jacobi_fallback_) {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
    return;
  }
  const Index* cols = p.col_idx.data();
  const Real* l = l_values_.data();
  // Forward solve L y = r.
  y_.resize(r.size());
  for (Index i = 0; i < p.rows; ++i) {
    Real s = r[static_cast<std::size_t>(i)];
    const Index diag = p.diag_slot[static_cast<std::size_t>(i)];
    for (Index k = p.row_ptr[static_cast<std::size_t>(i)]; k < diag; ++k) {
      s -= l[k] * y_[static_cast<std::size_t>(cols[k])];
    }
    y_[static_cast<std::size_t>(i)] = s / l[diag];
  }
  // Backward solve Lᵀ z = y, column-oriented: once z_i is final, scatter its
  // L(i, k) z_i contributions up into the still-pending rows k < i.
  std::copy(y_.begin(), y_.end(), z.begin());
  for (Index i = p.rows - 1; i >= 0; --i) {
    const Index diag = p.diag_slot[static_cast<std::size_t>(i)];
    const Real zi = z[static_cast<std::size_t>(i)] / l[diag];
    z[static_cast<std::size_t>(i)] = zi;
    for (Index k = p.row_ptr[static_cast<std::size_t>(i)]; k < diag; ++k) {
      z[static_cast<std::size_t>(cols[k])] -= l[k] * zi;
    }
  }
}

}  // namespace parma::linalg

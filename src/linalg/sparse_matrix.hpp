// Compressed-sparse-row matrix with a COO staging builder.
//
// Used for the assembled Jacobians of the full joint-constraint system and
// for graph Laplacians; duplicate COO entries are summed on conversion, which
// matches the accumulate-on-assembly pattern of finite-element style codes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "linalg/aligned.hpp"

namespace parma::linalg {

class CsrMatrix;

/// What CooBuilder::build does with coordinates whose accumulated value is
/// exactly zero. kDrop (the historical default) removes them, which makes the
/// sparsity pattern value-dependent; kKeep retains them as explicit zeros so
/// the pattern is a pure function of the coordinates added -- required by any
/// consumer that reuses the symbolic structure across numeric refreshes.
enum class ZeroPolicy { kDrop, kKeep };

/// Coordinate-format staging area: push (row, col, value) triplets in any
/// order, then freeze into CSR.
class CooBuilder {
 public:
  CooBuilder(Index rows, Index cols);

  /// Accumulates `value` at (row, col). Values at duplicate coordinates sum.
  void add(Index row, Index col, Real value);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t num_triplets() const { return rows_idx_.size(); }

  /// Sorts (stably: duplicates sum in insertion order) and merges duplicates
  /// into CSR. `policy` decides whether exact-zero sums keep their slot.
  [[nodiscard]] CsrMatrix build(ZeroPolicy policy = ZeroPolicy::kDrop) const;

 private:
  Index rows_;
  Index cols_;
  std::vector<Index> rows_idx_;
  std::vector<Index> cols_idx_;
  std::vector<Real> values_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
            std::vector<Index> col_idx, std::vector<Real> values);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] const std::vector<Index>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<Index>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<Real>& values() const { return values_; }

  /// Mutable numeric values for in-place refresh of a fixed pattern (the
  /// symbolic/numeric split in solver/system_kernels.hpp). The pattern
  /// (row_ptr/col_idx) stays immutable.
  [[nodiscard]] std::vector<Real>& values_mut() { return values_; }

  /// y = A x.
  [[nodiscard]] std::vector<Real> multiply(const std::vector<Real>& x) const;

  /// y = A^T x.
  [[nodiscard]] std::vector<Real> multiply_transpose(const std::vector<Real>& x) const;

  /// y = A x into a preallocated y (resized if needed; no per-call allocation
  /// once y has capacity). `lo`/`hi` restrict to the row range [lo, hi) so
  /// callers can partition rows across threads (disjoint writes).
  void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const;
  void multiply_rows_into(const std::vector<Real>& x, std::vector<Real>& y,
                          Index lo, Index hi) const;

  /// y = A^T x into a preallocated y (serial: transpose products scatter
  /// across columns, so this is not row-partitionable).
  void multiply_transpose_into(const std::vector<Real>& x, std::vector<Real>& y) const;

  /// Entry lookup (binary search within the row); zero if absent.
  [[nodiscard]] Real at(Index row, Index col) const;

  /// Main diagonal as a vector (zero where absent); requires square.
  [[nodiscard]] std::vector<Real> diagonal() const;

  [[nodiscard]] CsrMatrix transpose() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<Real> values_;
};

/// SIMD-friendly shadow of a CsrMatrix: the same pattern and values, with the
/// entries of each fixed row chunk stored contiguously and every chunk's
/// first entry placed on a 64-byte boundary. Each SpMV chunk then streams one
/// dense, aligned slab of (value, column) pairs -- no chunk shares a cache
/// line with another, which is what lets the compiler vectorize the inner
/// accumulation and lets parallel chunks avoid false sharing.
///
/// The row-major entry ORDER inside a row is exactly the CsrMatrix's, so
/// multiply_rows_into performs the identical additions in the identical
/// sequence: results are bit-identical to CsrMatrix::multiply_rows_into
/// (asserted in tests), and the chunk boundaries remain the pure function of
/// the row count that the determinism contract requires.
///
/// Split the same way as the system kernels: the pattern (offsets, padded
/// column slabs) is built once from the symbolic structure; refresh_values
/// re-copies the numeric values in place, chunk by chunk (parallelizable --
/// chunks are disjoint).
class PaddedCsrChunks {
 public:
  PaddedCsrChunks() = default;
  /// Build the padded layout from `a`'s pattern and copy its current values.
  PaddedCsrChunks(const CsrMatrix& a, Index rows_per_chunk);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] Index rows_per_chunk() const { return rows_per_chunk_; }
  [[nodiscard]] Index chunk_count() const;

  /// In-pattern value refresh (whole matrix, serial).
  void refresh_values(const CsrMatrix& a);
  /// Refresh one chunk's values: a straight contiguous copy (rows of a chunk
  /// are consecutive in the source CSR too). Chunks are disjoint, so callers
  /// may refresh them from parallel workers.
  void refresh_chunk_values(const CsrMatrix& a, Index chunk);

  /// y[lo, hi) = (A x)[lo, hi): the CsrMatrix::multiply_rows_into arithmetic
  /// on the padded slabs.
  void multiply_rows_into(const std::vector<Real>& x, std::vector<Real>& y,
                          Index lo, Index hi) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Index rows_per_chunk_ = 1;
  std::vector<Index> row_begin_;  ///< per-row first padded slot (size rows)
  std::vector<Index> row_end_;    ///< per-row one-past-last padded slot
  AlignedVector<Index> col_idx_;
  AlignedVector<Real> values_;
};

}  // namespace parma::linalg

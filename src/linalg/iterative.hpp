// Iterative solvers for sparse symmetric systems: Jacobi-preconditioned
// conjugate gradient and Gauss-Seidel sweeps.
//
// Two CG surfaces exist:
//  * conjugate_gradient(...)       -- the historical allocate-per-call entry;
//  * conjugate_gradient_with(...)  -- the workspace template below: zero
//    allocations per iteration (in-place SpMV + ordered chunked dot
//    reductions), same algorithm, bit-identical to the historical entry for
//    any operator whose multiply/dot reproduce CsrMatrix::multiply and
//    linalg::dot (asserted in tests/test_kernels.cpp).
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::linalg {

struct IterativeOptions {
  Index max_iterations = 10000;
  Real tolerance = 1e-10;  ///< relative residual ||r|| / ||b||
  /// Opt-in mixed-precision path (sparse workspace ladder only): the inner CG
  /// runs on a float copy of A inside a double iterative-refinement outer
  /// loop, and the result only counts as converged if the DOUBLE residual
  /// meets `tolerance` (the accuracy gate). On a miss the caller falls back
  /// to the full-double solve, so enabling this can cost time but never
  /// accuracy. Off by default; changes numerics when on (not bit-identical).
  bool mixed_precision = false;
};

struct IterativeResult {
  std::vector<Real> x;
  Index iterations = 0;
  Real relative_residual = 0.0;
  bool converged = false;
};

/// Conjugate gradient for symmetric positive-(semi)definite A, with Jacobi
/// (diagonal) preconditioning. `x0` seeds the iteration (zeros if empty).
IterativeResult conjugate_gradient(const CsrMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options = {},
                                   std::vector<Real> x0 = {});

/// Dense overload (same algorithm and preconditioning); lets the solver
/// fallback ladder drive the LM normal equations through the identical
/// CG -> Tikhonov -> dense escalation as the sparse full-system path.
IterativeResult conjugate_gradient(const DenseMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options = {},
                                   std::vector<Real> x0 = {});

/// Gauss-Seidel relaxation; converges for diagonally-dominant / SPD systems.
IterativeResult gauss_seidel(const CsrMatrix& a, const std::vector<Real>& b,
                             const IterativeOptions& options = {},
                             std::vector<Real> x0 = {});

/// Preallocated scratch for conjugate_gradient_with: one resize when the
/// problem size first appears, zero allocations per CG iteration thereafter.
struct CgWorkspace {
  std::vector<Real> r;         ///< residual
  std::vector<Real> z;         ///< preconditioned residual
  std::vector<Real> p;         ///< search direction
  std::vector<Real> ap;        ///< operator-applied direction
  std::vector<Real> inv_diag;  ///< Jacobi preconditioner
  std::vector<Real> partials;  ///< ordered dot-reduction partials

  void resize(std::size_t n) {
    r.resize(n);
    z.resize(n);
    p.resize(n);
    ap.resize(n);
    inv_diag.resize(n);
    partials.resize(dot_chunk_count(n));
  }
};

/// Workspace CG over any linear operator `Op` exposing
///   Index rows() const;
///   void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const;
///   void diagonal_into(std::vector<Real>& d) const;
///   Real dot(const std::vector<Real>&, const std::vector<Real>&,
///            std::vector<Real>& partials) const;
/// The body mirrors the historical cg_impl operation for operation; an Op
/// whose multiply_into/dot match CsrMatrix::multiply and linalg::dot (e.g.
/// SerialCsrOperator below, or the executor-backed operator in
/// solver/system_kernels.hpp, whose ordered reductions produce the same bits
/// as the serial ones) makes the two entries bit-identical.
///
/// `precond` is the preconditioner seam: null runs the historical inline
/// Jacobi arithmetic verbatim (bit-identical to every pre-preconditioner
/// release and to the allocate-per-call entry); non-null routes z = M⁻¹ r
/// through Preconditioner::apply instead. A JacobiPreconditioner refreshed
/// from the operator's diagonal reproduces the null path bit for bit (its
/// apply performs the same multiply) -- asserted in tests.
template <typename Op>
IterativeResult conjugate_gradient_with(const Op& op, const std::vector<Real>& b,
                                        const IterativeOptions& options, CgWorkspace& ws,
                                        const Preconditioner* precond,
                                        std::vector<Real> x0 = {}) {
  PARMA_REQUIRE(static_cast<Index>(b.size()) == op.rows(), "CG rhs size mismatch");
  const std::size_t n = b.size();
  ws.resize(n);

  IterativeResult result;
  result.x = x0.empty() ? std::vector<Real>(n, 0.0) : std::move(x0);
  PARMA_REQUIRE(result.x.size() == n, "CG x0 size mismatch");

  // Same chaos hook as the allocate-per-call entry (see iterative.cpp).
  if (fault::should_fire(fault::Point::kCgNonConvergence)) {
    result.relative_residual = 1.0;
    result.converged = false;
    return result;
  }

  const Real norm_b = std::sqrt(op.dot(b, b, ws.partials));
  if (norm_b == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  if (precond == nullptr) {
    op.diagonal_into(ws.inv_diag);
    for (Real& d : ws.inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;
  }
  const auto apply_precond = [&] {
    if (precond == nullptr) {
      for (std::size_t i = 0; i < n; ++i) ws.z[i] = ws.inv_diag[i] * ws.r[i];
    } else {
      precond->apply(ws.r, ws.z);
    }
  };

  op.multiply_into(result.x, ws.ap);
  for (std::size_t i = 0; i < n; ++i) ws.r[i] = b[i] - ws.ap[i];
  apply_precond();
  ws.p = ws.z;
  Real rz = op.dot(ws.r, ws.z, ws.partials);

  for (Index it = 0; it < options.max_iterations; ++it) {
    result.relative_residual = std::sqrt(op.dot(ws.r, ws.r, ws.partials)) / norm_b;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    op.multiply_into(ws.p, ws.ap);
    const Real pap = op.dot(ws.p, ws.ap, ws.partials);
    if (pap <= 0.0) {
      result.iterations = it;
      return result;
    }
    const Real alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) result.x[i] += alpha * ws.p[i];
    for (std::size_t i = 0; i < n; ++i) ws.r[i] += -alpha * ws.ap[i];
    apply_precond();
    const Real rz_new = op.dot(ws.r, ws.z, ws.partials);
    const Real beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) ws.p[i] = ws.z[i] + beta * ws.p[i];
  }
  result.iterations = options.max_iterations;
  result.relative_residual = std::sqrt(op.dot(ws.r, ws.r, ws.partials)) / norm_b;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

/// Unpreconditioned-seam overload: the historical signature, inline Jacobi.
template <typename Op>
IterativeResult conjugate_gradient_with(const Op& op, const std::vector<Real>& b,
                                        const IterativeOptions& options,
                                        CgWorkspace& ws, std::vector<Real> x0 = {}) {
  return conjugate_gradient_with(op, b, options, ws, nullptr, std::move(x0));
}

/// Scratch for conjugate_gradient_mixed: the float shadow of A's values plus
/// the float CG vectors and the double refinement buffers. Reused across
/// solves; sized on first use.
struct MixedPrecisionWorkspace {
  std::vector<float> values;    ///< float copy of A's values
  std::vector<float> xf, rf, zf, pf, apf, inv_diagf, bf;
  std::vector<Real> residual;   ///< double outer residual
  std::vector<Real> ax;         ///< double SpMV scratch
};

/// Mixed-precision CG: float SpMV inner solves wrapped in a double
/// iterative-refinement outer loop. Each outer round solves A c ≈ r/||r|| in
/// float (Jacobi-preconditioned, the residual pre-scaled into float range)
/// and applies x += ||r|| c in double; the loop ends when the DOUBLE residual
/// meets options.tolerance. converged=false whenever that gate is missed
/// (stalled refinement, float breakdown, or iteration budget) -- callers fall
/// back to the full-double path, so accuracy never regresses.
/// `iterations` counts inner float CG iterations (comparable to plain CG).
IterativeResult conjugate_gradient_mixed(const CsrMatrix& a, const std::vector<Real>& b,
                                         const IterativeOptions& options,
                                         MixedPrecisionWorkspace& ws,
                                         std::vector<Real> x0 = {});

/// Serial CsrMatrix adapter for conjugate_gradient_with.
class SerialCsrOperator {
 public:
  explicit SerialCsrOperator(const CsrMatrix& a) : a_(&a) {
    PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  }
  [[nodiscard]] Index rows() const { return a_->rows(); }
  void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const {
    a_->multiply_into(x, y);
  }
  void diagonal_into(std::vector<Real>& d) const {
    d.assign(static_cast<std::size_t>(a_->rows()), 0.0);
    const auto& row_ptr = a_->row_ptr();
    const auto& col_idx = a_->col_idx();
    const auto& values = a_->values();
    for (Index r = 0; r < a_->rows(); ++r) {
      for (Index k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        if (col_idx[static_cast<std::size_t>(k)] == r) {
          d[static_cast<std::size_t>(r)] = values[static_cast<std::size_t>(k)];
          break;
        }
      }
    }
  }
  [[nodiscard]] Real dot(const std::vector<Real>& a, const std::vector<Real>& b,
                         std::vector<Real>& partials) const {
    return ordered_dot(a, b, partials);
  }

 private:
  const CsrMatrix* a_;
};

/// Dense adapter for conjugate_gradient_with (the LM normal-equations path).
class SerialDenseOperator {
 public:
  explicit SerialDenseOperator(const DenseMatrix& a) : a_(&a) {
    PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  }
  [[nodiscard]] Index rows() const { return a_->rows(); }
  void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const {
    a_->multiply_into(x, y);
  }
  void diagonal_into(std::vector<Real>& d) const {
    d.resize(static_cast<std::size_t>(a_->rows()));
    for (Index i = 0; i < a_->rows(); ++i) d[static_cast<std::size_t>(i)] = (*a_)(i, i);
  }
  [[nodiscard]] Real dot(const std::vector<Real>& a, const std::vector<Real>& b,
                         std::vector<Real>& partials) const {
    return ordered_dot(a, b, partials);
  }

 private:
  const DenseMatrix* a_;
};

}  // namespace parma::linalg

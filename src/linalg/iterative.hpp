// Iterative solvers for sparse symmetric systems: Jacobi-preconditioned
// conjugate gradient and Gauss-Seidel sweeps.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace parma::linalg {

struct IterativeOptions {
  Index max_iterations = 10000;
  Real tolerance = 1e-10;  ///< relative residual ||r|| / ||b||
};

struct IterativeResult {
  std::vector<Real> x;
  Index iterations = 0;
  Real relative_residual = 0.0;
  bool converged = false;
};

/// Conjugate gradient for symmetric positive-(semi)definite A, with Jacobi
/// (diagonal) preconditioning. `x0` seeds the iteration (zeros if empty).
IterativeResult conjugate_gradient(const CsrMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options = {},
                                   std::vector<Real> x0 = {});

/// Dense overload (same algorithm and preconditioning); lets the solver
/// fallback ladder drive the LM normal equations through the identical
/// CG -> Tikhonov -> dense escalation as the sparse full-system path.
IterativeResult conjugate_gradient(const DenseMatrix& a, const std::vector<Real>& b,
                                   const IterativeOptions& options = {},
                                   std::vector<Real> x0 = {});

/// Gauss-Seidel relaxation; converges for diagonally-dominant / SPD systems.
IterativeResult gauss_seidel(const CsrMatrix& a, const std::vector<Real>& b,
                             const IterativeOptions& options = {},
                             std::vector<Real> x0 = {});

}  // namespace parma::linalg

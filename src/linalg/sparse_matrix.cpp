#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <numeric>

#include "common/require.hpp"

namespace parma::linalg {

CooBuilder::CooBuilder(Index rows, Index cols) : rows_(rows), cols_(cols) {
  PARMA_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

void CooBuilder::add(Index row, Index col, Real value) {
  PARMA_REQUIRE(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "COO coordinate out of range");
  rows_idx_.push_back(row);
  cols_idx_.push_back(col);
  values_.push_back(value);
}

CsrMatrix CooBuilder::build(ZeroPolicy policy) const {
  const std::size_t nnz_in = values_.size();
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Stable: duplicates at one coordinate sum in insertion order, which pins
  // the floating-point result and lets the scatter-map refresh in
  // solver/system_kernels reproduce it bit for bit.
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (rows_idx_[a] != rows_idx_[b]) return rows_idx_[a] < rows_idx_[b];
    return cols_idx_[a] < cols_idx_[b];
  });

  std::vector<Index> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<Real> values;
  col_idx.reserve(nnz_in);
  values.reserve(nnz_in);

  for (std::size_t k = 0; k < nnz_in;) {
    const Index r = rows_idx_[order[k]];
    const Index c = cols_idx_[order[k]];
    Real sum = 0.0;
    while (k < nnz_in && rows_idx_[order[k]] == r && cols_idx_[order[k]] == c) {
      sum += values_[order[k]];
      ++k;
    }
    if (sum != 0.0 || policy == ZeroPolicy::kKeep) {
      col_idx.push_back(c);
      values.push_back(sum);
      ++row_ptr[static_cast<std::size_t>(r) + 1];
    }
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows_); ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
                     std::vector<Index> col_idx, std::vector<Real> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  PARMA_REQUIRE(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                "CSR row_ptr must have rows+1 entries");
  PARMA_REQUIRE(col_idx_.size() == values_.size(), "CSR col/value size mismatch");
  PARMA_REQUIRE(static_cast<std::size_t>(row_ptr_.back()) == values_.size(),
                "CSR row_ptr terminator mismatch");
}

std::vector<Real> CsrMatrix::multiply(const std::vector<Real>& x) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply: size mismatch");
  std::vector<Real> y(static_cast<std::size_t>(rows_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    Real sum = 0.0;
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      sum += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
  return y;
}

void CsrMatrix::multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const {
  y.resize(static_cast<std::size_t>(rows_));
  multiply_rows_into(x, y, 0, rows_);
}

void CsrMatrix::multiply_rows_into(const std::vector<Real>& x, std::vector<Real>& y,
                                   Index lo, Index hi) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply_rows_into: size mismatch");
  PARMA_REQUIRE(static_cast<Index>(y.size()) == rows_ && lo >= 0 && hi <= rows_,
                "multiply_rows_into: bad output or row range");
  for (Index r = lo; r < hi; ++r) {
    Real sum = 0.0;
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      sum += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void CsrMatrix::multiply_transpose_into(const std::vector<Real>& x,
                                        std::vector<Real>& y) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == rows_,
                "multiply_transpose_into: size mismatch");
  y.assign(static_cast<std::size_t>(cols_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const Real xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * xr;
    }
  }
}

std::vector<Real> CsrMatrix::multiply_transpose(const std::vector<Real>& x) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == rows_, "multiply_transpose: size mismatch");
  std::vector<Real> y(static_cast<std::size_t>(cols_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const Real xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * xr;
    }
  }
  return y;
}

Real CsrMatrix::at(Index row, Index col) const {
  PARMA_REQUIRE(row >= 0 && row < rows_ && col >= 0 && col < cols_, "at: out of range");
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(row)];
  const auto end = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

std::vector<Real> CsrMatrix::diagonal() const {
  PARMA_REQUIRE(rows_ == cols_, "diagonal: matrix must be square");
  std::vector<Real> d(static_cast<std::size_t>(rows_), 0.0);
  for (Index r = 0; r < rows_; ++r) d[static_cast<std::size_t>(r)] = at(r, r);
  return d;
}

CsrMatrix CsrMatrix::transpose() const {
  CooBuilder builder(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      builder.add(col_idx_[static_cast<std::size_t>(k)], r,
                  values_[static_cast<std::size_t>(k)]);
    }
  }
  return builder.build();
}

PaddedCsrChunks::PaddedCsrChunks(const CsrMatrix& a, Index rows_per_chunk)
    : rows_(a.rows()), cols_(a.cols()), rows_per_chunk_(std::max<Index>(1, rows_per_chunk)) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  row_begin_.resize(static_cast<std::size_t>(rows_));
  row_end_.resize(static_cast<std::size_t>(rows_));
  // Pass 1: padded offsets. Rows inside a chunk pack back to back; each chunk
  // start rounds up to the next cache line.
  std::size_t offset = 0;
  for (Index lo = 0; lo < rows_; lo += rows_per_chunk_) {
    offset = align_up_elements<Real>(offset);
    const Index hi = std::min(rows_, lo + rows_per_chunk_);
    for (Index r = lo; r < hi; ++r) {
      const Index nnz = row_ptr[static_cast<std::size_t>(r) + 1] -
                        row_ptr[static_cast<std::size_t>(r)];
      row_begin_[static_cast<std::size_t>(r)] = static_cast<Index>(offset);
      offset += static_cast<std::size_t>(nnz);
      row_end_[static_cast<std::size_t>(r)] = static_cast<Index>(offset);
    }
  }
  // Pass 2: copy the pattern (zero-filled padding gaps are never read, but
  // keep them deterministic) and the current values.
  col_idx_.assign(offset, 0);
  values_.assign(offset, 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const Index src = row_ptr[static_cast<std::size_t>(r)];
    const Index dst = row_begin_[static_cast<std::size_t>(r)];
    const Index nnz = row_end_[static_cast<std::size_t>(r)] - dst;
    std::copy_n(col_idx.begin() + src, nnz, col_idx_.begin() + dst);
  }
  refresh_values(a);
}

Index PaddedCsrChunks::chunk_count() const {
  return rows_ == 0 ? 0 : (rows_ + rows_per_chunk_ - 1) / rows_per_chunk_;
}

void PaddedCsrChunks::refresh_values(const CsrMatrix& a) {
  const Index chunks = chunk_count();
  for (Index c = 0; c < chunks; ++c) refresh_chunk_values(a, c);
}

void PaddedCsrChunks::refresh_chunk_values(const CsrMatrix& a, Index chunk) {
  PARMA_REQUIRE(a.rows() == rows_, "refresh_chunk_values: pattern mismatch");
  const Index lo = chunk * rows_per_chunk_;
  const Index hi = std::min(rows_, lo + rows_per_chunk_);
  if (lo >= hi) return;
  // A chunk's entries are contiguous in both layouts and in the same order:
  // one straight copy.
  const auto& row_ptr = a.row_ptr();
  const Index src = row_ptr[static_cast<std::size_t>(lo)];
  const Index count = row_ptr[static_cast<std::size_t>(hi)] - src;
  std::copy_n(a.values().begin() + src, count,
              values_.begin() + row_begin_[static_cast<std::size_t>(lo)]);
}

void PaddedCsrChunks::multiply_rows_into(const std::vector<Real>& x, std::vector<Real>& y,
                                         Index lo, Index hi) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply_rows_into: size mismatch");
  PARMA_REQUIRE(static_cast<Index>(y.size()) == rows_ && lo >= 0 && hi <= rows_,
                "multiply_rows_into: bad output or row range");
  // Identical per-row accumulation order to CsrMatrix::multiply_rows_into;
  // restrict-qualified slab pointers let the inner loop vectorize.
  const Real* __restrict values = values_.data();
  const Index* __restrict cols = col_idx_.data();
  const Real* __restrict xv = x.data();
  for (Index r = lo; r < hi; ++r) {
    Real sum = 0.0;
    const Index end = row_end_[static_cast<std::size_t>(r)];
    for (Index k = row_begin_[static_cast<std::size_t>(r)]; k < end; ++k) {
      sum += values[k] * xv[cols[k]];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

}  // namespace parma::linalg

#include "linalg/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace parma::linalg {

DenseMatrix::DenseMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.0) {
  PARMA_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

DenseMatrix::DenseMatrix(std::initializer_list<std::initializer_list<Real>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<Index>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_ * cols_));
  for (const auto& row : rows) {
    PARMA_REQUIRE(static_cast<Index>(row.size()) == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::identity(Index n) {
  DenseMatrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<Real> DenseMatrix::multiply(const std::vector<Real>& x) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply: shape mismatch");
  std::vector<Real> y(static_cast<std::size_t>(rows_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    Real sum = 0.0;
    const Real* row = data_.data() + r * cols_;
    for (Index c = 0; c < cols_; ++c) sum += row[c] * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = sum;
  }
  return y;
}

void DenseMatrix::multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply_into: shape mismatch");
  y.resize(static_cast<std::size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) {
    Real sum = 0.0;
    const Real* row = data_.data() + r * cols_;
    for (Index c = 0; c < cols_; ++c) sum += row[c] * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

std::vector<Real> DenseMatrix::multiply_transpose(const std::vector<Real>& x) const {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == rows_, "multiply_transpose: shape mismatch");
  std::vector<Real> y(static_cast<std::size_t>(cols_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const Real xr = x[static_cast<std::size_t>(r)];
    const Real* row = data_.data() + r * cols_;
    for (Index c = 0; c < cols_; ++c) y[static_cast<std::size_t>(c)] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  PARMA_REQUIRE(cols_ == other.rows_, "matmul: inner dimensions differ");
  DenseMatrix out(rows_, other.cols_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = 0; k < cols_; ++k) {
      const Real aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (Index j = 0; j < other.cols_; ++j) out(i, j) += aik * other(k, j);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Real DenseMatrix::frobenius_norm() const {
  Real sum = 0.0;
  for (Real v : data_) sum += v * v;
  return std::sqrt(sum);
}

Real DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  PARMA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  Real m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

bool DenseMatrix::is_symmetric(Real tol) const {
  if (rows_ != cols_) return false;
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = i + 1; j < cols_; ++j) {
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

}  // namespace parma::linalg

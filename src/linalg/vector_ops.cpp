#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace parma::linalg {

Real dot(const std::vector<Real>& a, const std::vector<Real>& b) {
  PARMA_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  Real sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Real norm2(const std::vector<Real>& a) { return std::sqrt(dot(a, a)); }

std::size_t dot_chunk_count(std::size_t n) {
  if (n <= kSerialDotThreshold) return 1;
  return (n + kDotChunk - 1) / kDotChunk;
}

Real dot_chunk_partial(const std::vector<Real>& a, const std::vector<Real>& b,
                       std::size_t c) {
  const std::size_t n = a.size();
  const std::size_t chunks = dot_chunk_count(n);
  const std::size_t lo = (chunks == 1) ? 0 : c * kDotChunk;
  const std::size_t hi = (chunks == 1) ? n : std::min(n, lo + kDotChunk);
  Real sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += a[i] * b[i];
  return sum;
}

Real ordered_dot(const std::vector<Real>& a, const std::vector<Real>& b,
                 std::vector<Real>& partials) {
  PARMA_REQUIRE(a.size() == b.size(), "ordered_dot: size mismatch");
  const std::size_t chunks = dot_chunk_count(a.size());
  partials.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) partials[c] = dot_chunk_partial(a, b, c);
  Real sum = 0.0;
  for (Real p : partials) sum += p;
  return sum;
}

Real norm_inf(const std::vector<Real>& a) {
  Real m = 0.0;
  for (Real v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(Real alpha, const std::vector<Real>& x, std::vector<Real>& y) {
  PARMA_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Real alpha, std::vector<Real>& x) {
  for (Real& v : x) v *= alpha;
}

std::vector<Real> subtract(const std::vector<Real>& a, const std::vector<Real>& b) {
  PARMA_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  std::vector<Real> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<Real> add(const std::vector<Real>& a, const std::vector<Real>& b) {
  PARMA_REQUIRE(a.size() == b.size(), "add: size mismatch");
  std::vector<Real> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Real relative_error(const std::vector<Real>& a, const std::vector<Real>& b) {
  const Real denom = std::max(norm2(b), Real{1e-300});
  return norm2(subtract(a, b)) / denom;
}

}  // namespace parma::linalg

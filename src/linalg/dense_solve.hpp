// Dense direct solvers: LU with partial pivoting and Cholesky (LL^T).
//
// The per-pair nodal systems of the joint-constraint formulation are dense,
// symmetric positive-definite matrices of size 2(n-1); Cholesky is the
// workhorse. LU covers the general (Jacobian) case.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"

namespace parma::linalg {

/// LU factorization with partial pivoting (PA = LU), stored packed.
class LuFactorization {
 public:
  /// Factorizes a square matrix. Throws NumericalError if singular to
  /// machine precision.
  explicit LuFactorization(DenseMatrix a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<Real> solve(const std::vector<Real>& b) const;

  /// Solves A X = B column-by-column.
  [[nodiscard]] DenseMatrix solve(const DenseMatrix& b) const;

  /// det(A) from the diagonal of U and the permutation sign.
  [[nodiscard]] Real determinant() const;

  [[nodiscard]] Index size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<Index> perm_;
  int perm_sign_ = 1;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
class CholeskyFactorization {
 public:
  /// Factorizes; throws NumericalError if not positive definite.
  explicit CholeskyFactorization(const DenseMatrix& a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<Real> solve(const std::vector<Real>& b) const;

  [[nodiscard]] Index size() const { return l_.rows(); }

  /// Lower-triangular factor (upper part is zero).
  [[nodiscard]] const DenseMatrix& lower() const { return l_; }

 private:
  DenseMatrix l_;
};

/// One-shot convenience: solve A x = b via LU.
std::vector<Real> solve_dense(const DenseMatrix& a, const std::vector<Real>& b);

/// Matrix inverse via LU (test/diagnostic use; prefer solve()).
DenseMatrix invert(const DenseMatrix& a);

}  // namespace parma::linalg

// Heterogeneous-cluster extension (the paper's future work, Section VII:
// "we will extend the proposed approach into a cluster of heterogeneous
// nodes").
//
// Ranks now carry a relative speed factor (1.0 = the measuring machine).
// Two partitioners are provided for the same measured task list:
//   * block_partition        -- the homogeneous contiguous split (what the
//                               paper's MPI prototype does), which a
//                               heterogeneous fleet turns into a straggler
//                               problem: makespan = slowest rank;
//   * speed_weighted_partition -- contiguous split with boundaries placed so
//                               every rank receives work proportional to its
//                               speed, restoring balance.
// simulate_heterogeneous replays either assignment under the usual
// alpha-beta communication model.
#pragma once

#include <vector>

#include "mpisim/cluster_model.hpp"

namespace parma::mpisim {

/// One rank's capability: cost_seconds of a task are divided by `speed`.
struct RankProfile {
  Real speed = 1.0;
};

/// A fleet description; helpers build the common shapes.
std::vector<RankProfile> uniform_fleet(Index ranks, Real speed = 1.0);

/// `fast_fraction` of ranks run at `fast_speed`, the rest at `slow_speed`
/// (e.g. a cluster of new and old nodes).
std::vector<RankProfile> two_tier_fleet(Index ranks, Real fast_fraction, Real fast_speed,
                                        Real slow_speed);

/// Task index ranges per rank, contiguous: [begin, end) pairs.
using Partition = std::vector<std::pair<std::size_t, std::size_t>>;

/// Equal task-count split (ignores speeds).
Partition block_partition(std::size_t num_tasks, Index ranks);

/// Contiguous split with per-rank shares proportional to speed (cost-aware:
/// boundaries are placed on the cumulative measured cost, not the count).
Partition speed_weighted_partition(const std::vector<parallel::VirtualTask>& tasks,
                                   const std::vector<RankProfile>& fleet);

struct HeterogeneousResult {
  Real makespan_seconds = 0.0;
  Real compute_seconds = 0.0;   ///< slowest rank's compute
  Real comm_seconds = 0.0;
  Real spawn_seconds = 0.0;
  std::vector<Real> rank_compute;

  /// Ratio slowest/fastest busy rank: 1.0 = perfectly balanced.
  [[nodiscard]] Real imbalance() const;
};

/// Replays `tasks` assigned by `partition` onto `fleet`.
HeterogeneousResult simulate_heterogeneous(const std::vector<parallel::VirtualTask>& tasks,
                                           const std::vector<RankProfile>& fleet,
                                           const Partition& partition,
                                           const ClusterCostModel& model = {});

}  // namespace parma::mpisim

#include "mpisim/cluster_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace parma::mpisim {

ClusterResult simulate_cluster(const std::vector<parallel::VirtualTask>& tasks, Index ranks,
                               const ClusterCostModel& model) {
  PARMA_REQUIRE(ranks >= 1, "need at least one rank");
  // Contiguous block partition of the task list (pair (i, j) order), spelled
  // as an owner map and replayed through the explicit-placement overload --
  // per-rank accumulation runs in task-index order either way, so this
  // delegation is bit-identical to summing each block directly.
  const std::size_t total = tasks.size();
  std::vector<Index> owner(total);
  for (Index r = 0; r < ranks; ++r) {
    const std::size_t lo = total * static_cast<std::size_t>(r) / static_cast<std::size_t>(ranks);
    const std::size_t hi =
        total * static_cast<std::size_t>(r + 1) / static_cast<std::size_t>(ranks);
    for (std::size_t i = lo; i < hi; ++i) owner[i] = r;
  }
  return simulate_cluster(tasks, ranks, model, owner);
}

ClusterResult simulate_cluster(const std::vector<parallel::VirtualTask>& tasks, Index ranks,
                               const ClusterCostModel& model,
                               const std::vector<Index>& task_owner) {
  PARMA_REQUIRE(ranks >= 1, "need at least one rank");
  PARMA_REQUIRE(task_owner.size() == tasks.size(),
                "task_owner must name one rank per task");
  ClusterResult result;
  result.rank_compute.assign(static_cast<std::size_t>(ranks), 0.0);

  std::vector<std::uint64_t> rank_bytes(static_cast<std::size_t>(ranks), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Index r = task_owner[i];
    PARMA_REQUIRE(r >= 0 && r < ranks, "task_owner rank out of range");
    result.rank_compute[static_cast<std::size_t>(r)] +=
        tasks[i].cost_seconds * model.task_cost_scale + model.task_dispatch_overhead;
    rank_bytes[static_cast<std::size_t>(r)] += tasks[i].bytes;
  }
  std::uint64_t max_rank_output_bytes = 0;
  for (const std::uint64_t b : rank_bytes) {
    max_rank_output_bytes = std::max(max_rank_output_bytes, b);
  }
  result.compute_seconds =
      *std::max_element(result.rank_compute.begin(), result.rank_compute.end());

  // Communication: binomial-tree broadcast of inputs plus a flat gather of
  // tiny per-rank statistics (each rank writes its own equation shard to the
  // parallel filesystem, so bulk output never crosses back to the root).
  const Real tree_depth = std::ceil(std::log2(static_cast<Real>(std::max<Index>(ranks, 2))));
  const Real bcast = (ranks > 1)
                         ? tree_depth * (model.latency_seconds +
                                         static_cast<Real>(model.broadcast_bytes) *
                                             model.seconds_per_byte)
                         : 0.0;
  const Real stats_gather =
      (ranks > 1) ? static_cast<Real>(ranks - 1) * model.latency_seconds : 0.0;
  result.comm_seconds = bcast + stats_gather;
  result.storage_seconds =
      static_cast<Real>(max_rank_output_bytes) * model.storage_seconds_per_byte;
  result.spawn_seconds = model.rank_spawn_overhead * std::log2(static_cast<Real>(ranks) + 1.0);
  result.makespan_seconds = result.spawn_seconds + result.comm_seconds +
                            result.compute_seconds + result.storage_seconds;
  return result;
}

}  // namespace parma::mpisim

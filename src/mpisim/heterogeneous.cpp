#include "mpisim/heterogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace parma::mpisim {

std::vector<RankProfile> uniform_fleet(Index ranks, Real speed) {
  PARMA_REQUIRE(ranks >= 1, "fleet needs at least one rank");
  PARMA_REQUIRE(speed > 0.0, "speed must be positive");
  return std::vector<RankProfile>(static_cast<std::size_t>(ranks), {speed});
}

std::vector<RankProfile> two_tier_fleet(Index ranks, Real fast_fraction, Real fast_speed,
                                        Real slow_speed) {
  PARMA_REQUIRE(ranks >= 1, "fleet needs at least one rank");
  PARMA_REQUIRE(fast_fraction >= 0.0 && fast_fraction <= 1.0, "fraction in [0,1]");
  PARMA_REQUIRE(fast_speed > 0.0 && slow_speed > 0.0, "speeds must be positive");
  std::vector<RankProfile> fleet(static_cast<std::size_t>(ranks));
  const auto fast_count =
      static_cast<std::size_t>(std::llround(fast_fraction * static_cast<Real>(ranks)));
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    fleet[r].speed = (r < fast_count) ? fast_speed : slow_speed;
  }
  return fleet;
}

Partition block_partition(std::size_t num_tasks, Index ranks) {
  PARMA_REQUIRE(ranks >= 1, "need at least one rank");
  Partition partition;
  partition.reserve(static_cast<std::size_t>(ranks));
  for (Index r = 0; r < ranks; ++r) {
    partition.emplace_back(num_tasks * static_cast<std::size_t>(r) / static_cast<std::size_t>(ranks),
                           num_tasks * static_cast<std::size_t>(r + 1) /
                               static_cast<std::size_t>(ranks));
  }
  return partition;
}

Partition speed_weighted_partition(const std::vector<parallel::VirtualTask>& tasks,
                                   const std::vector<RankProfile>& fleet) {
  PARMA_REQUIRE(!fleet.empty(), "fleet must not be empty");
  Real total_cost = 0.0;
  for (const auto& t : tasks) total_cost += t.cost_seconds;
  Real total_speed = 0.0;
  for (const auto& r : fleet) {
    PARMA_REQUIRE(r.speed > 0.0, "speed must be positive");
    total_speed += r.speed;
  }

  Partition partition;
  partition.reserve(fleet.size());
  std::size_t cursor = 0;
  Real consumed = 0.0;
  Real speed_prefix = 0.0;
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    speed_prefix += fleet[r].speed;
    // This rank's shard ends where the cumulative cost reaches its
    // speed-proportional share of the total.
    const Real target = total_cost * speed_prefix / total_speed;
    const std::size_t begin = cursor;
    if (r + 1 == fleet.size()) {
      cursor = tasks.size();  // last rank takes the remainder exactly
    } else {
      while (cursor < tasks.size() && consumed + tasks[cursor].cost_seconds / 2.0 < target) {
        consumed += tasks[cursor].cost_seconds;
        ++cursor;
      }
    }
    partition.emplace_back(begin, cursor);
  }
  return partition;
}

Real HeterogeneousResult::imbalance() const {
  Real busiest = 0.0;
  Real lightest = std::numeric_limits<Real>::infinity();
  for (Real c : rank_compute) {
    busiest = std::max(busiest, c);
    if (c > 0.0) lightest = std::min(lightest, c);
  }
  if (!std::isfinite(lightest) || lightest == 0.0) return 1.0;
  return busiest / lightest;
}

HeterogeneousResult simulate_heterogeneous(const std::vector<parallel::VirtualTask>& tasks,
                                           const std::vector<RankProfile>& fleet,
                                           const Partition& partition,
                                           const ClusterCostModel& model) {
  PARMA_REQUIRE(partition.size() == fleet.size(), "partition/fleet size mismatch");
  HeterogeneousResult result;
  result.rank_compute.assign(fleet.size(), 0.0);

  std::uint64_t max_rank_bytes = 0;
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    const auto [begin, end] = partition[r];
    PARMA_REQUIRE(begin <= end && end <= tasks.size(), "partition range out of bounds");
    Real compute = 0.0;
    std::uint64_t bytes = 0;
    for (std::size_t t = begin; t < end; ++t) {
      compute += tasks[t].cost_seconds * model.task_cost_scale / fleet[r].speed +
                 model.task_dispatch_overhead;
      bytes += tasks[t].bytes;
    }
    result.rank_compute[r] = compute;
    max_rank_bytes = std::max(max_rank_bytes, bytes);
  }
  result.compute_seconds =
      *std::max_element(result.rank_compute.begin(), result.rank_compute.end());

  const auto ranks = static_cast<Index>(fleet.size());
  const Real tree_depth = std::ceil(std::log2(static_cast<Real>(std::max<Index>(ranks, 2))));
  const Real bcast = (ranks > 1)
                         ? tree_depth * (model.latency_seconds +
                                         static_cast<Real>(model.broadcast_bytes) *
                                             model.seconds_per_byte)
                         : 0.0;
  const Real stats = (ranks > 1) ? static_cast<Real>(ranks - 1) * model.latency_seconds : 0.0;
  result.comm_seconds = bcast + stats;
  result.spawn_seconds = model.rank_spawn_overhead * std::log2(static_cast<Real>(ranks) + 1.0);
  result.makespan_seconds = result.spawn_seconds + result.comm_seconds +
                            result.compute_seconds +
                            static_cast<Real>(max_rank_bytes) * model.storage_seconds_per_byte;
  return result;
}

}  // namespace parma::mpisim

#include "mpisim/communicator.hpp"

#include <exception>
#include <thread>

#include "common/require.hpp"

namespace parma::mpisim {
namespace detail {

void Mailbox::put(Index source, int tag, Payload payload) {
  {
    std::lock_guard lock(mu_);
    queues_[{source, tag}].push_back(std::move(payload));
  }
  arrived_.notify_all();
}

Payload Mailbox::take(Index source, int tag) {
  std::unique_lock lock(mu_);
  auto& queue = queues_[{source, tag}];
  arrived_.wait(lock, [&queue] { return !queue.empty(); });
  Payload payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Barrier::arrive_and_wait() {
  std::unique_lock lock(mu_);
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    released_.notify_all();
    return;
  }
  released_.wait(lock, [this, my_generation] { return generation_ != my_generation; });
}

World::World(Index size) : size(size), barrier(size) {
  PARMA_REQUIRE(size >= 1, "world size must be >= 1");
  mailboxes.reserve(static_cast<std::size_t>(size));
  for (Index i = 0; i < size; ++i) mailboxes.push_back(std::make_unique<Mailbox>());
}

}  // namespace detail

void Communicator::send(Index dest, int tag, Payload payload) {
  PARMA_REQUIRE(dest >= 0 && dest < size(), "send: destination out of range");
  PARMA_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "send: tag reserved for collectives");
  world_->mailboxes[static_cast<std::size_t>(dest)]->put(rank_, tag, std::move(payload));
}

Payload Communicator::recv(Index source, int tag) {
  PARMA_REQUIRE(source >= 0 && source < size(), "recv: source out of range");
  PARMA_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "recv: tag reserved for collectives");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->take(source, tag);
}

void Communicator::barrier() { world_->barrier.arrive_and_wait(); }

Payload Communicator::broadcast(Index root, Payload payload) {
  PARMA_REQUIRE(root >= 0 && root < size(), "broadcast: root out of range");
  const int tag = kCollectiveTagBase + (collective_epoch_++ % kCollectiveTagBase);
  const Index p = size();
  // Binomial tree over ranks relative to the root.
  const Index vrank = (rank_ - root + p) % p;
  if (vrank != 0) {
    // Receive from parent: clear the lowest set bit of vrank.
    const Index parent_v = vrank & (vrank - 1);
    const Index parent = (parent_v + root) % p;
    payload = world_->mailboxes[static_cast<std::size_t>(rank_)]->take(parent, tag);
  }
  // Forward to children: set each bit above the lowest set bit while < p.
  for (Index bit = 1; bit < p; bit <<= 1) {
    if (vrank & (bit - 1)) break;           // only aligned ranks forward at this level
    if (vrank & bit) break;                 // past our lowest set bit
    const Index child_v = vrank | bit;
    if (child_v >= p) break;
    const Index child = (child_v + root) % p;
    world_->mailboxes[static_cast<std::size_t>(child)]->put(rank_, tag, payload);
  }
  return payload;
}

Payload Communicator::reduce_sum(Index root, Payload contribution) {
  PARMA_REQUIRE(root >= 0 && root < size(), "reduce: root out of range");
  const int tag = kCollectiveTagBase + (collective_epoch_++ % kCollectiveTagBase);
  const Index p = size();
  const Index vrank = (rank_ - root + p) % p;
  // Binomial-tree fold: children send up, parents accumulate.
  for (Index bit = 1; bit < p; bit <<= 1) {
    if (vrank & bit) {
      const Index parent_v = vrank & ~bit;
      const Index parent = (parent_v + root) % p;
      world_->mailboxes[static_cast<std::size_t>(parent)]->put(rank_, tag,
                                                               std::move(contribution));
      return {};
    }
    const Index child_v = vrank | bit;
    if (child_v < p) {
      const Index child = (child_v + root) % p;
      Payload other = world_->mailboxes[static_cast<std::size_t>(rank_)]->take(child, tag);
      PARMA_REQUIRE(other.size() == contribution.size(),
                    "reduce: payload sizes differ across ranks");
      for (std::size_t i = 0; i < other.size(); ++i) contribution[i] += other[i];
    }
  }
  return contribution;
}

Payload Communicator::allreduce_sum(Payload contribution) {
  Payload reduced = reduce_sum(0, std::move(contribution));
  return broadcast(0, std::move(reduced));
}

std::vector<Payload> Communicator::gather(Index root, Payload payload) {
  PARMA_REQUIRE(root >= 0 && root < size(), "gather: root out of range");
  const int tag = kCollectiveTagBase + (collective_epoch_++ % kCollectiveTagBase);
  if (rank_ != root) {
    world_->mailboxes[static_cast<std::size_t>(root)]->put(rank_, tag, std::move(payload));
    return {};
  }
  std::vector<Payload> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = std::move(payload);
  for (Index r = 0; r < size(); ++r) {
    if (r == root) continue;
    out[static_cast<std::size_t>(r)] =
        world_->mailboxes[static_cast<std::size_t>(rank_)]->take(r, tag);
  }
  return out;
}

Payload Communicator::scatter(Index root, std::vector<Payload> shards) {
  PARMA_REQUIRE(root >= 0 && root < size(), "scatter: root out of range");
  const int tag = kCollectiveTagBase + (collective_epoch_++ % kCollectiveTagBase);
  if (rank_ == root) {
    PARMA_REQUIRE(static_cast<Index>(shards.size()) == size(),
                  "scatter: need one shard per rank");
    for (Index r = 0; r < size(); ++r) {
      if (r == root) continue;
      world_->mailboxes[static_cast<std::size_t>(r)]->put(rank_, tag,
                                                          std::move(shards[static_cast<std::size_t>(r)]));
    }
    return std::move(shards[static_cast<std::size_t>(root)]);
  }
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->take(root, tag);
}

Payload Communicator::sendrecv(Index dest, Index source, int tag, Payload payload) {
  PARMA_REQUIRE(dest >= 0 && dest < size(), "sendrecv: destination out of range");
  PARMA_REQUIRE(source >= 0 && source < size(), "sendrecv: source out of range");
  PARMA_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "sendrecv: tag reserved");
  // Buffered semantics: deposit first, then block on the matching receive.
  world_->mailboxes[static_cast<std::size_t>(dest)]->put(rank_, tag, std::move(payload));
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->take(source, tag);
}

std::vector<Payload> Communicator::alltoall(std::vector<Payload> outgoing) {
  PARMA_REQUIRE(static_cast<Index>(outgoing.size()) == size(),
                "alltoall: need one payload per rank");
  const int tag = kCollectiveTagBase + (collective_epoch_++ % kCollectiveTagBase);
  const Index p = size();
  std::vector<Payload> incoming(static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  // Deposit every outgoing message first (buffered, so no ordering hazard),
  // then drain the inbox.
  for (Index r = 0; r < p; ++r) {
    if (r == rank_) continue;
    world_->mailboxes[static_cast<std::size_t>(r)]->put(
        rank_, tag, std::move(outgoing[static_cast<std::size_t>(r)]));
  }
  for (Index r = 0; r < p; ++r) {
    if (r == rank_) continue;
    incoming[static_cast<std::size_t>(r)] =
        world_->mailboxes[static_cast<std::size_t>(rank_)]->take(r, tag);
  }
  return incoming;
}

void run_ranks(Index num_ranks, const std::function<void(Communicator&)>& body) {
  PARMA_REQUIRE(num_ranks >= 1, "need at least one rank");
  detail::World world(num_ranks);

  std::mutex error_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (Index r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&world, &body, &error_mu, &first_error, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace parma::mpisim

// In-process message-passing runtime with MPI-style semantics.
//
// The paper's scalability experiment (Fig. 10) runs Parma with mpi4py/mpich
// on a 58-node InfiniBand cluster. This harness has no cluster and no MPI
// installation, so mpisim supplies the same programming model inside one
// process: `run_ranks(p, fn)` launches p ranks (threads), each receiving a
// Communicator that supports tagged point-to-point sends/receives and the
// collectives Parma uses. Rank code written against this interface maps
// one-to-one onto real MPI calls.
//
// Messages carry std::vector<Real> payloads (sufficient for Parma's traffic:
// task shards, equation coefficients, timing reductions).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace parma::mpisim {

using Payload = std::vector<Real>;

namespace detail {

/// One rank's inbox: tagged messages keyed by (source, tag).
class Mailbox {
 public:
  void put(Index source, int tag, Payload payload);
  Payload take(Index source, int tag);  // blocks until a match arrives

 private:
  std::mutex mu_;
  std::condition_variable arrived_;
  std::map<std::pair<Index, int>, std::deque<Payload>> queues_;
};

/// Reusable sense-reversing barrier.
class Barrier {
 public:
  explicit Barrier(Index parties) : parties_(parties) {}
  void arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable released_;
  Index parties_;
  Index waiting_ = 0;
  std::uint64_t generation_ = 0;
};

struct World {
  explicit World(Index size);
  Index size;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  Barrier barrier;
};

}  // namespace detail

class Communicator {
 public:
  Communicator(detail::World& world, Index rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] Index rank() const { return rank_; }
  [[nodiscard]] Index size() const { return world_->size; }

  /// Blocking tagged send (buffered: never deadlocks on unmatched receives).
  void send(Index dest, int tag, Payload payload);

  /// Blocking tagged receive from a specific source.
  [[nodiscard]] Payload recv(Index source, int tag);

  /// All ranks must call; releases when every rank has arrived.
  void barrier();

  /// Binomial-tree broadcast from `root`; returns the broadcast value on
  /// every rank (pass the payload on the root, anything elsewhere).
  [[nodiscard]] Payload broadcast(Index root, Payload payload);

  /// Element-wise sum reduction to `root` (empty payload elsewhere).
  [[nodiscard]] Payload reduce_sum(Index root, Payload contribution);

  /// reduce_sum followed by broadcast.
  [[nodiscard]] Payload allreduce_sum(Payload contribution);

  /// Gathers every rank's (variable-length) payload at `root`, ordered by
  /// rank; other ranks get an empty vector.
  [[nodiscard]] std::vector<Payload> gather(Index root, Payload payload);

  /// Root scatters shards[r] to rank r; returns this rank's shard.
  [[nodiscard]] Payload scatter(Index root, std::vector<Payload> shards);

  /// Combined send+receive (deadlock-free even for ring exchanges, since
  /// sends are buffered): sends `payload` to `dest` and returns the message
  /// received from `source` under the same tag.
  [[nodiscard]] Payload sendrecv(Index dest, Index source, int tag, Payload payload);

  /// Personalized all-to-all: `outgoing[r]` goes to rank r; returns the
  /// vector of payloads received, indexed by source rank. The transpose
  /// primitive of distributed matrix kernels.
  [[nodiscard]] std::vector<Payload> alltoall(std::vector<Payload> outgoing);

 private:
  static constexpr int kCollectiveTagBase = 1 << 20;  // reserved tag space
  detail::World* world_;
  Index rank_;
  int collective_epoch_ = 0;  // distinguishes back-to-back collectives
};

/// Launches `num_ranks` threads running `body(comm)` and joins them.
/// The first exception thrown by any rank is rethrown after all join.
void run_ranks(Index num_ranks, const std::function<void(Communicator&)>& body);

}  // namespace parma::mpisim

// Virtual-time cluster replay for the Fig. 10 strong-scaling experiment.
//
// The paper deploys Parma with MPI on up to 1,024 cores (32 nodes x 32
// cores, FDR InfiniBand, GPFS). simulate_cluster() replays a measured task
// list onto p ranks under the standard alpha-beta (latency/bandwidth)
// communication model:
//   T(p) = spawn + T_scatter(p) + max_r(compute_r) + T_gather(p)
// with contiguous block partitioning of the task list (Parma's distribution
// of endpoint pairs over ranks). Defaults approximate the paper's testbed
// (FDR ~6.8 GB/s per link, ~2 us latency, mpich process launch in the ms
// range); the benchmarks print the parameters they used.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "parallel/virtual_scheduler.hpp"

namespace parma::mpisim {

struct ClusterCostModel {
  Real rank_spawn_overhead = 2e-3;   ///< per-run mpiexec/rank startup (amortized)
  Real latency_seconds = 2e-6;       ///< alpha: per-message latency
  Real seconds_per_byte = 1.47e-10;  ///< beta: 1 / 6.8 GB/s (FDR InfiniBand)
  Real task_dispatch_overhead = 5e-7;

  /// Per-client parallel-filesystem write bandwidth (the paper's GPFS): each
  /// rank streams its own equation shard, so the storage phase scales with
  /// ranks instead of funnelling output through rank 0.
  Real storage_seconds_per_byte = 2.0e-10;  ///< ~5 GB/s per GPFS client

  /// Bytes of input each rank needs (measured Z/U values broadcast to all).
  std::uint64_t broadcast_bytes = 0;

  /// Uniform multiplier on task costs; 1.0 replays the measured C++ costs,
  /// larger values replay the schedule under a slower per-task substrate
  /// (e.g. ~500x approximates the paper's Python prototype -- see
  /// EXPERIMENTS.md for the calibration).
  Real task_cost_scale = 1.0;
};

struct ClusterResult {
  Real makespan_seconds = 0.0;
  Real compute_seconds = 0.0;    ///< slowest rank's pure compute time
  Real comm_seconds = 0.0;       ///< broadcast + stats-gather latency
  Real storage_seconds = 0.0;    ///< slowest rank's shard write to the parallel FS
  Real spawn_seconds = 0.0;
  std::vector<Real> rank_compute;  ///< per-rank compute time

  [[nodiscard]] Real efficiency(Real serial_seconds, Index ranks) const {
    return serial_seconds / (static_cast<Real>(ranks) * makespan_seconds);
  }
};

/// Block-partitions `tasks` over `ranks` and accumulates the alpha-beta costs.
/// Each task's `bytes` field is the size of the output it contributes to the
/// final gather.
ClusterResult simulate_cluster(const std::vector<parallel::VirtualTask>& tasks, Index ranks,
                               const ClusterCostModel& model = {});

/// Explicit-placement variant: `task_owner[i]` names the rank that runs task
/// i (the seam the real cluster tier routes its consistent-hash placement
/// through, so `bench/fig10_mpi_scalability` and `cluster::Router` exercise
/// one placement code path). Per-rank costs accumulate in task-index order,
/// so the contiguous overload above is exactly this with a block-partition
/// owner map.
ClusterResult simulate_cluster(const std::vector<parallel::VirtualTask>& tasks, Index ranks,
                               const ClusterCostModel& model,
                               const std::vector<Index>& task_owner);

}  // namespace parma::mpisim

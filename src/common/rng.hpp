// Deterministic, seedable random number generation.
//
// Benchmarks and synthetic-device generation must be reproducible across
// runs and across worker counts, so every stochastic component takes an
// explicit Rng (no global state, no std::random_device in library code).
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace parma {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
/// Small, fast, and with well-understood statistical quality; the state is
/// value-semantic so generators can be copied to fork deterministic
/// sub-streams per worker.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  Real uniform();

  /// Uniform in [lo, hi). Requires lo < hi.
  Real uniform(Real lo, Real hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  Real normal();

  /// Normal with mean/stddev.
  Real normal(Real mean, Real stddev);

  /// Derive an independent child stream (e.g. one per worker / per pair).
  Rng fork(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<Index>& v);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  Real cached_normal_ = 0.0;
};

}  // namespace parma

// Memory-footprint observation for the Fig. 8 experiment (CDFs of memory
// usage over a run's lifetime).
//
// Two complementary mechanisms:
//  * current_rss_bytes()/peak_rss_bytes() read the process statistics from
//    /proc (Linux), matching how the paper measured its Python processes;
//  * HeapModel is a deterministic, allocation-count-based model that the
//    equation-formation code feeds explicitly. It provides identical numbers
//    for any worker count and any machine, which is what the CDF comparison
//    needs on a single-core harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace parma {

/// Resident-set size of the current process in bytes (0 if unavailable).
std::uint64_t current_rss_bytes();

/// Peak resident-set size (VmHWM) of the current process in bytes.
std::uint64_t peak_rss_bytes();

/// One observation of memory in use at a moment of (virtual or real) time.
struct MemorySample {
  Real time_seconds = 0.0;
  std::uint64_t bytes = 0;
};

/// Background sampler: polls current_rss_bytes() on a fixed cadence from a
/// dedicated thread for the lifetime of the object (RAII; joins on destroy).
class RssSampler {
 public:
  explicit RssSampler(Real interval_seconds = 0.01);
  ~RssSampler();

  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  /// Stop sampling and return all samples collected so far.
  std::vector<MemorySample> stop();

 private:
  void run(Real interval_seconds);

  std::atomic<bool> done_{false};
  std::mutex mu_;
  std::vector<MemorySample> samples_;
  std::thread thread_;
};

/// Deterministic heap model: tracks "bytes currently live" as reported by the
/// instrumented equation-formation pipeline, recording a trace of
/// (virtual time, live bytes) pairs. Thread-safe.
class HeapModel {
 public:
  /// Record that `bytes` became live at virtual time `t`.
  void allocate(Real t, std::uint64_t bytes);

  /// Record that `bytes` were released at virtual time `t`.
  void release(Real t, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t live_bytes() const { return live_.load(); }
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_.load(); }

  /// Trace sorted by time (sorts lazily on access).
  [[nodiscard]] std::vector<MemorySample> trace() const;

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::vector<MemorySample> trace_;
};

/// Empirical CDF over the *time* a process spends at or below each memory
/// level: given a trace of samples covering [0, total_time], cdf(m) = fraction
/// of time with live memory <= m. Used to regenerate Fig. 8.
class MemoryCdf {
 public:
  /// Builds the CDF from a trace; samples are interpreted as a step function
  /// (live memory stays at sample[i].bytes during [t_i, t_{i+1})).
  explicit MemoryCdf(std::vector<MemorySample> trace);

  /// Fraction of run time spent at memory <= bytes, in [0, 1].
  [[nodiscard]] Real fraction_at_or_below(std::uint64_t bytes) const;

  /// Memory level (bytes) below which the process stays for `quantile` of the
  /// time; quantile in [0, 1].
  [[nodiscard]] std::uint64_t quantile_bytes(Real quantile) const;

  [[nodiscard]] std::uint64_t peak_bytes() const;
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// (bytes, cumulative fraction) knots of the CDF, ascending in bytes.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, Real>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<std::uint64_t, Real>> points_;
};

}  // namespace parma

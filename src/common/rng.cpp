#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace parma {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Real Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<Real>(next_u64() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) {
  PARMA_REQUIRE(lo < hi, "uniform(lo, hi) needs lo < hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PARMA_REQUIRE(n > 0, "uniform_index needs n > 0");
  const std::uint64_t threshold = -n % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

Real Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  Real u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const Real u2 = uniform();
  const Real radius = std::sqrt(-2.0 * std::log(u1));
  const Real angle = 2.0 * std::numbers::pi_v<Real> * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

Real Rng::normal(Real mean, Real stddev) { return mean + stddev * normal(); }

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent state with the stream id through SplitMix64; distinct
  // stream ids give statistically independent child generators.
  std::uint64_t seed = state_[0] ^ rotl(state_[3], 13) ^ (stream_id * 0xD1B54A32D192ED03ULL + 1);
  return Rng(splitmix64(seed));
}

void Rng::shuffle(std::vector<Index>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace parma

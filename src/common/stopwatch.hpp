// Monotonic wall-clock stopwatch used by benchmarks and the metrics layer.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace parma {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] Real elapsed_seconds() const {
    return std::chrono::duration<Real>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset.
  [[nodiscard]] Real elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parma

// Minimal leveled logger. Library code logs sparingly (benchmarks/examples
// are the main consumers); output goes to stderr, level filtered globally.
#pragma once

#include <sstream>
#include <string>

namespace parma {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `[level] message` to stderr if `level` passes the threshold.
/// Thread-safe (single write call per message).
void log_message(LogLevel level, const std::string& message);

namespace detail {
struct LogLine {
  explicit LogLine(LogLevel level) : level(level) {}
  ~LogLine() { log_message(level, os.str()); }
  LogLevel level;
  std::ostringstream os;
};
}  // namespace detail

}  // namespace parma

#define PARMA_LOG(level) ::parma::detail::LogLine(level).os
#define PARMA_LOG_INFO PARMA_LOG(::parma::LogLevel::kInfo)
#define PARMA_LOG_WARN PARMA_LOG(::parma::LogLevel::kWarn)
#define PARMA_LOG_DEBUG PARMA_LOG(::parma::LogLevel::kDebug)

// Small string helpers for the text-format readers/writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace parma {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Parse a Real, throwing parma::IoError with context on failure.
Real parse_real(std::string_view s, std::string_view context);

/// Parse a non-negative integer, throwing parma::IoError on failure.
Index parse_index(std::string_view s, std::string_view context);

/// true if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into std::string (type-safe wrapper).
std::string format_real(Real v, int precision = 6);

}  // namespace parma

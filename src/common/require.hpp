// Precondition / invariant checking.
//
// PARMA_REQUIRE(cond, msg)  -- contract check, always on; throws parma::ContractError.
// PARMA_ASSERT(cond)        -- internal invariant; compiled out in NDEBUG builds.
//
// Following the Core Guidelines (I.6/E.12), contract violations are programming
// errors and are reported with file/line context so callers can fail fast.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace parma {

/// Thrown when a public-API precondition is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an input file or data stream is malformed.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular / indefinite system.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* cond, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw ContractError(os.str());
}

}  // namespace detail
}  // namespace parma

#define PARMA_REQUIRE(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::parma::detail::contract_failure(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
#define PARMA_ASSERT(cond) ((void)0)
#else
#define PARMA_ASSERT(cond) PARMA_REQUIRE(cond, "internal invariant")
#endif

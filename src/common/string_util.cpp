#include "common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/require.hpp"

namespace parma {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

Real parse_real(std::string_view s, std::string_view context) {
  const std::string_view t = trim(s);
  Real value = 0.0;
  const auto* begin = t.data();
  const auto* end = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || t.empty()) {
    std::ostringstream os;
    os << "cannot parse real number from '" << std::string(s) << "' (" << std::string(context) << ")";
    throw IoError(os.str());
  }
  return value;
}

Index parse_index(std::string_view s, std::string_view context) {
  const std::string_view t = trim(s);
  Index value = 0;
  const auto* begin = t.data();
  const auto* end = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || t.empty() || value < 0) {
    std::ostringstream os;
    os << "cannot parse index from '" << std::string(s) << "' (" << std::string(context) << ")";
    throw IoError(os.str());
  }
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_real(Real v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace parma

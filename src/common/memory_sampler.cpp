#include "common/memory_sampler.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "common/require.hpp"
#include "common/stopwatch.hpp"

namespace parma {
namespace {

std::uint64_t read_status_field_kib(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  const std::string key = field;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream is(line.substr(key.size()));
      std::uint64_t kib = 0;
      is >> kib;
      return kib;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t current_rss_bytes() { return read_status_field_kib("VmRSS:") * 1024; }

std::uint64_t peak_rss_bytes() { return read_status_field_kib("VmHWM:") * 1024; }

RssSampler::RssSampler(Real interval_seconds)
    : thread_([this, interval_seconds] { run(interval_seconds); }) {}

RssSampler::~RssSampler() {
  done_.store(true);
  if (thread_.joinable()) thread_.join();
}

std::vector<MemorySample> RssSampler::stop() {
  done_.store(true);
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mu_);
  return samples_;
}

void RssSampler::run(Real interval_seconds) {
  Stopwatch clock;
  while (!done_.load()) {
    MemorySample s{clock.elapsed_seconds(), current_rss_bytes()};
    {
      std::lock_guard lock(mu_);
      samples_.push_back(s);
    }
    std::this_thread::sleep_for(std::chrono::duration<Real>(interval_seconds));
  }
}

void HeapModel::allocate(Real t, std::uint64_t bytes) {
  const std::uint64_t now = live_.fetch_add(bytes) + bytes;
  std::uint64_t prev_peak = peak_.load();
  while (now > prev_peak && !peak_.compare_exchange_weak(prev_peak, now)) {
  }
  std::lock_guard lock(mu_);
  trace_.push_back({t, now});
}

void HeapModel::release(Real t, std::uint64_t bytes) {
  PARMA_REQUIRE(live_.load() >= bytes, "HeapModel release exceeds live bytes");
  const std::uint64_t now = live_.fetch_sub(bytes) - bytes;
  std::lock_guard lock(mu_);
  trace_.push_back({t, now});
}

std::vector<MemorySample> HeapModel::trace() const {
  std::lock_guard lock(mu_);
  std::vector<MemorySample> out = trace_;
  std::stable_sort(out.begin(), out.end(),
                   [](const MemorySample& a, const MemorySample& b) {
                     return a.time_seconds < b.time_seconds;
                   });
  return out;
}

MemoryCdf::MemoryCdf(std::vector<MemorySample> trace) {
  if (trace.size() < 2) {
    if (trace.size() == 1) points_.emplace_back(trace[0].bytes, 1.0);
    return;
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const MemorySample& a, const MemorySample& b) {
                     return a.time_seconds < b.time_seconds;
                   });
  const Real total = trace.back().time_seconds - trace.front().time_seconds;
  if (total <= 0.0) {
    points_.emplace_back(trace.back().bytes, 1.0);
    return;
  }
  // Accumulate dwell time per memory level, then integrate to a CDF.
  std::vector<std::pair<std::uint64_t, Real>> dwell;
  dwell.reserve(trace.size());
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const Real dt = trace[i + 1].time_seconds - trace[i].time_seconds;
    if (dt > 0.0) dwell.emplace_back(trace[i].bytes, dt);
  }
  std::sort(dwell.begin(), dwell.end());
  Real acc = 0.0;
  for (std::size_t i = 0; i < dwell.size(); ++i) {
    acc += dwell[i].second;
    if (i + 1 < dwell.size() && dwell[i + 1].first == dwell[i].first) continue;
    points_.emplace_back(dwell[i].first, acc / total);
  }
  if (!points_.empty()) points_.back().second = 1.0;  // guard rounding
  // A level observed only at the final instant has zero dwell but is still
  // the run's peak; surface it so peak_bytes() reports true maximum memory.
  std::uint64_t max_bytes = 0;
  for (const auto& s : trace) max_bytes = std::max(max_bytes, s.bytes);
  if (points_.empty() || points_.back().first < max_bytes) {
    points_.emplace_back(max_bytes, 1.0);
  }
}

Real MemoryCdf::fraction_at_or_below(std::uint64_t bytes) const {
  Real best = 0.0;
  for (const auto& [level, frac] : points_) {
    if (level <= bytes) best = frac;
    else break;
  }
  return best;
}

std::uint64_t MemoryCdf::quantile_bytes(Real quantile) const {
  PARMA_REQUIRE(quantile >= 0.0 && quantile <= 1.0, "quantile in [0,1]");
  for (const auto& [level, frac] : points_) {
    if (frac >= quantile) return level;
  }
  return points_.empty() ? 0 : points_.back().first;
}

std::uint64_t MemoryCdf::peak_bytes() const {
  return points_.empty() ? 0 : points_.back().first;
}

}  // namespace parma

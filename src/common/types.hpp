// Fundamental scalar and index types shared by every Parma module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace parma {

/// Floating-point scalar used throughout (resistances in kilo-ohm, voltages in
/// volt, currents in milli-ampere under that unit system).
using Real = double;

/// Index type for matrix/vector dimensions and graph entities.
using Index = std::int64_t;

/// Kilo-ohm bounds of healthy-vs-anomalous cell resistance reported by the
/// paper's wet lab (Section V-B): "resistance values of cells range between
/// 2,000 and 11,000 Kilohm, while the electrical voltage is 5 volts."
inline constexpr Real kWetLabMinResistanceKOhm = 2000.0;
inline constexpr Real kWetLabMaxResistanceKOhm = 11000.0;
inline constexpr Real kWetLabVoltage = 5.0;

}  // namespace parma

// Lightweight result-table builder used by the figure benchmarks.
//
// Every bench/figN binary emits its series as CSV rows (series,x,y[,extra...])
// so the paper's plots can be regenerated with any plotting tool, plus an
// aligned human-readable rendering to stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace parma {

/// A rectangular table of string cells with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Ts>
  void add(const Ts&... cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Writes `header\nrow\n...` with comma separation (no quoting; cells must
  /// not contain commas -- enforced).
  void write_csv(std::ostream& os) const;

  /// Writes an aligned, padded rendering for terminals.
  void write_pretty(std::ostream& os) const;

  /// Writes CSV to a file, creating parent directories if needed.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

namespace detail {
std::string cell_to_string(const std::string& s);
std::string cell_to_string(const char* s);
std::string cell_to_string(Real v);
std::string cell_to_string(Index v);
std::string cell_to_string(int v);
std::string cell_to_string(unsigned v);
std::string cell_to_string(std::uint64_t v);
}  // namespace detail

template <typename... Ts>
void Table::add(const Ts&... cells) {
  add_row({detail::cell_to_string(cells)...});
}

}  // namespace parma

#include "common/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace parma {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PARMA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  PARMA_REQUIRE(row.size() == header_.size(), "row width must match header");
  for (const auto& cell : row) {
    PARMA_REQUIRE(cell.find(',') == std::string::npos, "cells must not contain commas");
  }
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  PARMA_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  write_csv(out);
}

namespace detail {

std::string cell_to_string(const std::string& s) { return s; }
std::string cell_to_string(const char* s) { return s; }

std::string cell_to_string(Real v) {
  std::ostringstream os;
  os << std::setprecision(9) << v;
  return os.str();
}

std::string cell_to_string(Index v) { return std::to_string(v); }
std::string cell_to_string(int v) { return std::to_string(v); }
std::string cell_to_string(unsigned v) { return std::to_string(v); }
std::string cell_to_string(std::uint64_t v) { return std::to_string(v); }

}  // namespace detail
}  // namespace parma

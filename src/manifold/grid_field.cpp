#include "manifold/grid_field.hpp"

namespace parma::manifold {

ScalarField::ScalarField(Index rows, Index cols, Real initial)
    : rows_(rows), cols_(cols), values_(static_cast<std::size_t>(rows * cols), initial) {
  PARMA_REQUIRE(rows >= 2 && cols >= 2, "field needs at least a 2x2 grid");
}

ScalarField ScalarField::sample(Index rows, Index cols,
                                const std::function<Real(Real, Real)>& f) {
  ScalarField field(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      field.at(i, j) = f(static_cast<Real>(i), static_cast<Real>(j));
    }
  }
  return field;
}

Real& ScalarField::at(Index i, Index j) {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_, "field index out of range");
  return values_[static_cast<std::size_t>(i * cols_ + j)];
}

Real ScalarField::at(Index i, Index j) const {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_, "field index out of range");
  return values_[static_cast<std::size_t>(i * cols_ + j)];
}

EdgeField::EdgeField(Index rows, Index cols)
    : rows_(rows),
      cols_(cols),
      horizontal_(static_cast<std::size_t>(rows * (cols - 1)), 0.0),
      vertical_(static_cast<std::size_t>((rows - 1) * cols), 0.0) {
  PARMA_REQUIRE(rows >= 2 && cols >= 2, "edge field needs at least a 2x2 grid");
}

Real& EdgeField::horizontal(Index i, Index j) {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_ - 1, "horizontal edge out of range");
  return horizontal_[static_cast<std::size_t>(i * (cols_ - 1) + j)];
}

Real EdgeField::horizontal(Index i, Index j) const {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_ - 1, "horizontal edge out of range");
  return horizontal_[static_cast<std::size_t>(i * (cols_ - 1) + j)];
}

Real& EdgeField::vertical(Index i, Index j) {
  PARMA_REQUIRE(i >= 0 && i < rows_ - 1 && j >= 0 && j < cols_, "vertical edge out of range");
  return vertical_[static_cast<std::size_t>(i * cols_ + j)];
}

Real EdgeField::vertical(Index i, Index j) const {
  PARMA_REQUIRE(i >= 0 && i < rows_ - 1 && j >= 0 && j < cols_, "vertical edge out of range");
  return vertical_[static_cast<std::size_t>(i * cols_ + j)];
}

}  // namespace parma::manifold

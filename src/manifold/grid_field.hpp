// Discrete fields on the MEA grid (paper Section IV-B).
//
// The manifold view treats the device as a sampled 2-D surface: voltages are
// a scalar field on grid nodes, and currents/gradients live on grid edges
// (a discrete 1-form). ScalarField stores node samples; EdgeField stores one
// value per horizontal edge (between (i, j) and (i, j+1)) and one per
// vertical edge (between (i, j) and (i+1, j)) -- the natural discretization
// for circulation and Stokes'-theorem identities.
#pragma once

#include <functional>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace parma::manifold {

/// Node-sampled scalar field on an m x n grid.
class ScalarField {
 public:
  ScalarField(Index rows, Index cols, Real initial = 0.0);

  /// Samples f(i, j) at every node.
  static ScalarField sample(Index rows, Index cols,
                            const std::function<Real(Real, Real)>& f);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  Real& at(Index i, Index j);
  [[nodiscard]] Real at(Index i, Index j) const;

 private:
  Index rows_;
  Index cols_;
  std::vector<Real> values_;
};

/// Edge-valued field (discrete 1-form): h(i, j) lives on the edge from
/// (i, j) to (i, j+1); v(i, j) on the edge from (i, j) to (i+1, j).
class EdgeField {
 public:
  EdgeField(Index rows, Index cols);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  Real& horizontal(Index i, Index j);
  [[nodiscard]] Real horizontal(Index i, Index j) const;

  Real& vertical(Index i, Index j);
  [[nodiscard]] Real vertical(Index i, Index j) const;

  [[nodiscard]] Index num_horizontal_edges() const { return rows_ * (cols_ - 1); }
  [[nodiscard]] Index num_vertical_edges() const { return (rows_ - 1) * cols_; }

 private:
  Index rows_;
  Index cols_;
  std::vector<Real> horizontal_;  // rows x (cols-1)
  std::vector<Real> vertical_;    // (rows-1) x cols
};

}  // namespace parma::manifold

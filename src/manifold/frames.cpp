#include "manifold/frames.hpp"

#include <cmath>

#include "common/require.hpp"
#include "linalg/dense_solve.hpp"

namespace parma::manifold {

CurvilinearGrid::CurvilinearGrid(Index rows, Index cols,
                                 const std::function<Point(Real, Real)>& mapping)
    : rows_(rows), cols_(cols) {
  PARMA_REQUIRE(rows >= 2 && cols >= 2, "grid needs at least 2x2 nodes");
  points_.reserve(static_cast<std::size_t>(rows * cols));
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      points_.push_back(mapping(static_cast<Real>(i), static_cast<Real>(j)));
    }
  }
}

CurvilinearGrid CurvilinearGrid::regular(Index rows, Index cols, Real pitch) {
  PARMA_REQUIRE(pitch > 0.0, "pitch must be positive");
  return CurvilinearGrid(rows, cols, [pitch](Real u, Real v) {
    return Point{v * pitch, u * pitch};
  });
}

Point CurvilinearGrid::position(Index i, Index j) const {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_, "node out of range");
  return points_[static_cast<std::size_t>(i * cols_ + j)];
}

linalg::DenseMatrix CurvilinearGrid::jacobian(Index i, Index j) const {
  PARMA_REQUIRE(i >= 0 && i + 1 < rows_ && j >= 0 && j + 1 < cols_, "cell out of range");
  const Point p = position(i, j);
  const Point du = position(i + 1, j);
  const Point dv = position(i, j + 1);
  linalg::DenseMatrix jac(2, 2);
  jac(0, 0) = du.x - p.x;  // dx/du
  jac(0, 1) = dv.x - p.x;  // dx/dv
  jac(1, 0) = du.y - p.y;  // dy/du
  jac(1, 1) = dv.y - p.y;  // dy/dv
  return jac;
}

linalg::DenseMatrix CurvilinearGrid::metric(Index i, Index j) const {
  const linalg::DenseMatrix jac = jacobian(i, j);
  return jac.transpose().multiply(jac);
}

Real CurvilinearGrid::area_element(Index i, Index j) const {
  const linalg::DenseMatrix jac = jacobian(i, j);
  return std::abs(jac(0, 0) * jac(1, 1) - jac(0, 1) * jac(1, 0));
}

bool CurvilinearGrid::is_orthogonal(Index i, Index j, Real tol) const {
  return std::abs(metric(i, j)(0, 1)) <= tol;
}

std::vector<Real> CurvilinearGrid::physical_gradient(const ScalarField& field, Index i,
                                                     Index j) const {
  PARMA_REQUIRE(field.rows() == rows_ && field.cols() == cols_, "field/grid shape mismatch");
  PARMA_REQUIRE(i >= 0 && i + 1 < rows_ && j >= 0 && j + 1 < cols_, "cell out of range");
  // Logical-coordinate gradient by forward differences on the cell corner.
  const std::vector<Real> grad_uv{field.at(i + 1, j) - field.at(i, j),
                                  field.at(i, j + 1) - field.at(i, j)};
  // Chain rule: grad_uv = J^T grad_xy.
  return linalg::solve_dense(jacobian(i, j).transpose(), grad_uv);
}

Real CurvilinearGrid::integrate(const std::function<Real(Index, Index)>& cell_value) const {
  Real total = 0.0;
  for (Index i = 0; i + 1 < rows_; ++i) {
    for (Index j = 0; j + 1 < cols_; ++j) {
      total += cell_value(i, j) * area_element(i, j);
    }
  }
  return total;
}

}  // namespace parma::manifold

// Local frames and Jacobians for non-uniform MEAs (paper Section IV-B).
//
// "With the introduction of frames, we can adopt the Jacobian matrix to
// convert any arbitrary MEA into a locally orthogonal frame for parallel
// computation on the directions of partial derivatives."
//
// A CurvilinearGrid carries the physical (x, y) position of every logical
// node (u, v). Per cell it exposes the Jacobian J = d(x,y)/d(u,v), the
// metric tensor g = J^T J, and the pullback of logical-coordinate gradients
// to physical ones -- so a device manufactured on a warped substrate can be
// parametrized with the same logical-grid algorithms, patch by patch and in
// parallel, exactly as the paper argues.
#pragma once

#include <functional>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "manifold/grid_field.hpp"

namespace parma::manifold {

struct Point {
  Real x = 0.0;
  Real y = 0.0;
};

class CurvilinearGrid {
 public:
  /// Physical embedding from an explicit mapping (u, v) -> (x, y), sampled
  /// at the logical nodes of an m x n grid.
  CurvilinearGrid(Index rows, Index cols,
                  const std::function<Point(Real, Real)>& mapping);

  /// The identity embedding (the paper's equidistant orthogonal device).
  static CurvilinearGrid regular(Index rows, Index cols, Real pitch = 1.0);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] Point position(Index i, Index j) const;

  /// Forward-difference Jacobian of the embedding on cell (i, j):
  /// [[dx/du, dx/dv], [dy/du, dy/dv]] with u down rows, v across columns.
  [[nodiscard]] linalg::DenseMatrix jacobian(Index i, Index j) const;

  /// Metric tensor g = J^T J on the cell.
  [[nodiscard]] linalg::DenseMatrix metric(Index i, Index j) const;

  /// |det J|: physical area of the logical unit cell.
  [[nodiscard]] Real area_element(Index i, Index j) const;

  /// true if the frame at (i, j) is orthogonal to within `tol`
  /// (off-diagonal of the metric ~ 0).
  [[nodiscard]] bool is_orthogonal(Index i, Index j, Real tol = 1e-9) const;

  /// Physical-space gradient of a node field on cell (i, j): solves
  /// J^T grad_xy = grad_uv (the chain rule), so downstream physics can be
  /// written against the orthogonal physical frame regardless of how the
  /// device was laid out.
  [[nodiscard]] std::vector<Real> physical_gradient(const ScalarField& field,
                                                    Index i, Index j) const;

  /// Integral of a cell-sampled function over the physical surface:
  /// sum f(cell) * |det J|(cell) -- the area form the paper's Stokes
  /// argument integrates against.
  [[nodiscard]] Real integrate(const std::function<Real(Index, Index)>& cell_value) const;

 private:
  Index rows_;
  Index cols_;
  std::vector<Point> points_;
};

}  // namespace parma::manifold

// Discrete vector calculus on grid fields (paper Section IV-B).
//
// The paper's manifold argument: if the voltage field is smooth (continuous
// change, the usual microelectronic assumption), its calculus can be done
// with purely *local* data -- gradients along edges, curls on plaquettes --
// and Stokes' theorem ties boundary circulation to interior curl, which is
// what licenses parallelizing the parametrization per local patch. These
// operators make that executable:
//
//   gradient(U)        node scalar field -> edge field (exact 1-form dU)
//   circulation(F, R)  line integral of an edge field around rectangle R
//   plaquette_curl     the 1x1-cell circulation (discrete exterior
//                      derivative dF on 2-cells)
//   divergence         net edge flux at a node (the KCL operator!)
//
// Exact discrete identities (tested, not approximations):
//   * circulation(gradient(U), any rectangle) == 0          (d.d = 0)
//   * circulation(F, R) == sum of plaquette curls inside R  (Stokes/Green)
//   * mixed second differences commute                      (d2U/dxdy = d2U/dydx)
#pragma once

#include "manifold/grid_field.hpp"

namespace parma::manifold {

/// Exact discrete gradient: edge value = difference of endpoint samples.
EdgeField gradient(const ScalarField& u);

/// Axis-aligned rectangle of grid cells: rows [top, bottom], cols
/// [left, right], inclusive of boundary nodes; requires top < bottom and
/// left < right.
struct Rectangle {
  Index top = 0;
  Index left = 0;
  Index bottom = 1;
  Index right = 1;
};

/// Counter-clockwise line integral of the edge field around the rectangle's
/// boundary.
Real circulation(const EdgeField& f, const Rectangle& r);

/// Circulation around the unit cell with top-left corner (i, j).
Real plaquette_curl(const EdgeField& f, Index i, Index j);

/// Sum of plaquette curls strictly inside the rectangle.
Real interior_curl_sum(const EdgeField& f, const Rectangle& r);

/// Net outflow of the edge field at node (i, j) (boundary edges that do not
/// exist contribute zero) -- the discrete divergence, aka the KCL residual
/// when `f` carries branch currents.
Real divergence(const EdgeField& f, Index i, Index j);

/// Mixed second difference d2U/dxdy evaluated on cell (i, j) in the two
/// orders; the pair is returned so tests can assert equality.
struct MixedPartials {
  Real dxdy = 0.0;
  Real dydx = 0.0;
};
MixedPartials mixed_partials(const ScalarField& u, Index i, Index j);

/// Max |circulation(gradient(u), cell)| over all cells: a residual that is
/// zero (to rounding) for every scalar field -- the discrete d.d = 0.
Real max_gradient_curl(const ScalarField& u);

/// Max |circulation - interior curl sum| over all rectangles of a grid:
/// the discrete Stokes/Green identity residual (zero to rounding).
Real max_stokes_residual(const EdgeField& f);

}  // namespace parma::manifold

#include "manifold/calculus.hpp"

#include <algorithm>
#include <cmath>

namespace parma::manifold {
namespace {

void check_rectangle(const EdgeField& f, const Rectangle& r) {
  PARMA_REQUIRE(r.top >= 0 && r.left >= 0, "rectangle out of range");
  PARMA_REQUIRE(r.bottom < f.rows() && r.right < f.cols(), "rectangle out of range");
  PARMA_REQUIRE(r.top < r.bottom && r.left < r.right, "rectangle must be non-degenerate");
}

}  // namespace

EdgeField gradient(const ScalarField& u) {
  EdgeField g(u.rows(), u.cols());
  for (Index i = 0; i < u.rows(); ++i) {
    for (Index j = 0; j + 1 < u.cols(); ++j) g.horizontal(i, j) = u.at(i, j + 1) - u.at(i, j);
  }
  for (Index i = 0; i + 1 < u.rows(); ++i) {
    for (Index j = 0; j < u.cols(); ++j) g.vertical(i, j) = u.at(i + 1, j) - u.at(i, j);
  }
  return g;
}

Real circulation(const EdgeField& f, const Rectangle& r) {
  check_rectangle(f, r);
  Real total = 0.0;
  // Counter-clockwise: right along the top row, down the right column,
  // left along the bottom row, up the left column.
  for (Index j = r.left; j < r.right; ++j) total += f.horizontal(r.top, j);
  for (Index i = r.top; i < r.bottom; ++i) total += f.vertical(i, r.right);
  for (Index j = r.left; j < r.right; ++j) total -= f.horizontal(r.bottom, j);
  for (Index i = r.top; i < r.bottom; ++i) total -= f.vertical(i, r.left);
  return total;
}

Real plaquette_curl(const EdgeField& f, Index i, Index j) {
  return circulation(f, {i, j, i + 1, j + 1});
}

Real interior_curl_sum(const EdgeField& f, const Rectangle& r) {
  check_rectangle(f, r);
  Real total = 0.0;
  for (Index i = r.top; i < r.bottom; ++i) {
    for (Index j = r.left; j < r.right; ++j) total += plaquette_curl(f, i, j);
  }
  return total;
}

Real divergence(const EdgeField& f, Index i, Index j) {
  PARMA_REQUIRE(i >= 0 && i < f.rows() && j >= 0 && j < f.cols(), "node out of range");
  Real net = 0.0;
  if (j + 1 < f.cols()) net += f.horizontal(i, j);      // outgoing east
  if (j > 0) net -= f.horizontal(i, j - 1);             // incoming west
  if (i + 1 < f.rows()) net += f.vertical(i, j);        // outgoing south
  if (i > 0) net -= f.vertical(i - 1, j);               // incoming north
  return net;
}

MixedPartials mixed_partials(const ScalarField& u, Index i, Index j) {
  PARMA_REQUIRE(i >= 0 && i + 1 < u.rows() && j >= 0 && j + 1 < u.cols(),
                "cell out of range");
  MixedPartials mp;
  // d/dx then d/dy of the forward differences on the cell.
  const Real du_dx_top = u.at(i, j + 1) - u.at(i, j);
  const Real du_dx_bottom = u.at(i + 1, j + 1) - u.at(i + 1, j);
  mp.dydx = du_dx_bottom - du_dx_top;
  const Real du_dy_left = u.at(i + 1, j) - u.at(i, j);
  const Real du_dy_right = u.at(i + 1, j + 1) - u.at(i, j + 1);
  mp.dxdy = du_dy_right - du_dy_left;
  return mp;
}

Real max_gradient_curl(const ScalarField& u) {
  const EdgeField g = gradient(u);
  Real worst = 0.0;
  for (Index i = 0; i + 1 < u.rows(); ++i) {
    for (Index j = 0; j + 1 < u.cols(); ++j) {
      worst = std::max(worst, std::abs(plaquette_curl(g, i, j)));
    }
  }
  return worst;
}

Real max_stokes_residual(const EdgeField& f) {
  Real worst = 0.0;
  for (Index top = 0; top + 1 < f.rows(); ++top) {
    for (Index bottom = top + 1; bottom < f.rows(); ++bottom) {
      for (Index left = 0; left + 1 < f.cols(); ++left) {
        for (Index right = left + 1; right < f.cols(); ++right) {
          const Rectangle r{top, left, bottom, right};
          worst = std::max(worst, std::abs(circulation(f, r) - interior_curl_sum(f, r)));
        }
      }
    }
  }
  return worst;
}

}  // namespace parma::manifold

#include "mea/timeseries.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"
#include "mea/dataset_io.hpp"

namespace parma::mea {

std::vector<EpochFrame> simulate_campaign(const DeviceSpec& spec,
                                          const TimeSeriesOptions& options, Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(options.growth_per_hour >= 0.0, "growth must be non-negative");
  PARMA_REQUIRE(options.peak_growth_per_hour >= 0.0, "peak growth must be non-negative");

  std::vector<EpochFrame> frames;
  for (Real hours : kWetLabEpochsHours) {
    GeneratorOptions grown = options.scenario;
    const Real radius_scale = 1.0 + options.growth_per_hour * hours;
    const Real peak_scale = 1.0 + options.peak_growth_per_hour * hours;
    for (auto& blob : grown.anomalies) {
      blob.radius_row *= radius_scale;
      blob.radius_col *= radius_scale;
      blob.peak_resistance =
          std::min(blob.peak_resistance * peak_scale, kWetLabMaxResistanceKOhm);
    }
    Rng epoch_rng = rng.fork(static_cast<std::uint64_t>(hours * 1000.0) + 17);
    circuit::ResistanceGrid truth = generate_field(spec, grown, epoch_rng);
    Measurement measurement = measure(spec, truth, options.measurement, epoch_rng);
    frames.push_back({hours, std::move(truth), std::move(measurement)});
  }
  return frames;
}

std::vector<std::string> write_campaign(const std::string& directory,
                                        const std::vector<EpochFrame>& frames) {
  std::vector<std::string> paths;
  paths.reserve(frames.size());
  for (const auto& frame : frames) {
    std::ostringstream name;
    name << directory << "/epoch_" << frame.hours << "h.txt";
    write_measurement(name.str(), frame.measurement, frame.hours);
    paths.push_back(name.str());
  }
  return paths;
}

}  // namespace parma::mea

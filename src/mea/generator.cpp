#include "mea/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace parma::mea {

circuit::ResistanceGrid generate_field(const DeviceSpec& spec, const GeneratorOptions& options,
                                       Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(options.healthy_resistance > 0.0, "healthy resistance must be positive");
  PARMA_REQUIRE(options.jitter_fraction >= 0.0 && options.jitter_fraction < 0.5,
                "jitter fraction in [0, 0.5)");

  circuit::ResistanceGrid grid(spec.rows, spec.cols, options.healthy_resistance);
  for (Index i = 0; i < spec.rows; ++i) {
    for (Index j = 0; j < spec.cols; ++j) {
      Real value = options.healthy_resistance;
      // Blobs compose by taking the strongest local elevation; a Gaussian
      // falloff keeps boundaries smooth (the "continuous voltage change"
      // assumption of Section IV-B).
      for (const auto& blob : options.anomalies) {
        const Real dr = (static_cast<Real>(i) - blob.center_row) / blob.radius_row;
        const Real dc = (static_cast<Real>(j) - blob.center_col) / blob.radius_col;
        const Real falloff = std::exp(-(dr * dr + dc * dc));
        const Real elevated =
            options.healthy_resistance +
            (blob.peak_resistance - options.healthy_resistance) * falloff;
        value = std::max(value, elevated);
      }
      if (options.jitter_fraction > 0.0) {
        value *= std::max(0.5, 1.0 + rng.normal(0.0, options.jitter_fraction));
      }
      grid.at(i, j) = value;
    }
  }
  return grid;
}

GeneratorOptions random_scenario(const DeviceSpec& spec, Index num_anomalies, Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(num_anomalies >= 0, "anomaly count must be non-negative");
  GeneratorOptions options;
  for (Index a = 0; a < num_anomalies; ++a) {
    AnomalyBlob blob;
    blob.center_row = rng.uniform(0.0, static_cast<Real>(spec.rows - 1));
    blob.center_col = rng.uniform(0.0, static_cast<Real>(spec.cols - 1));
    const Real max_radius = std::max(1.5, static_cast<Real>(std::min(spec.rows, spec.cols)) / 6.0);
    blob.radius_row = rng.uniform(1.0, max_radius);
    blob.radius_col = rng.uniform(1.0, max_radius);
    blob.peak_resistance =
        rng.uniform(0.6 * kWetLabMaxResistanceKOhm, kWetLabMaxResistanceKOhm);
    options.anomalies.push_back(blob);
  }
  return options;
}

std::vector<bool> anomaly_mask(const circuit::ResistanceGrid& grid, Real threshold) {
  std::vector<bool> mask;
  mask.reserve(grid.flat().size());
  for (Real v : grid.flat()) mask.push_back(v > threshold);
  return mask;
}

}  // namespace parma::mea

// MEA device description (paper Section II-B).
//
// An m x n device has m horizontal wires, n vertical wires, 2*m*n joints and
// m*n point resistors; the wet-lab reference device is 64 x 64 and data is
// collected up to 100 x 100 endpoints.
#pragma once

#include "common/require.hpp"
#include "common/types.hpp"

namespace parma::mea {

struct DeviceSpec {
  Index rows = 0;           ///< number of horizontal wires (m)
  Index cols = 0;           ///< number of vertical wires (n)
  Real drive_voltage = kWetLabVoltage;  ///< volts applied across each probed pair

  [[nodiscard]] Index num_joints() const { return 2 * rows * cols; }
  [[nodiscard]] Index num_resistors() const { return rows * cols; }
  [[nodiscard]] Index num_endpoint_pairs() const { return rows * cols; }
  [[nodiscard]] bool is_square() const { return rows == cols; }

  /// Unknowns of the joint-constraint system: (rows-1 + cols-1) internal wire
  /// voltages per pair plus the resistors themselves (Section IV-A; for
  /// square n x n devices this is (2n-1)*n^2).
  [[nodiscard]] Index num_unknowns() const {
    return num_endpoint_pairs() * (rows - 1 + cols - 1) + num_resistors();
  }

  /// Equations of the joint-constraint system: 2 + (rows-1) + (cols-1) per
  /// pair (2n^3 for square devices).
  [[nodiscard]] Index num_equations() const {
    return num_endpoint_pairs() * (2 + (rows - 1) + (cols - 1));
  }

  void validate() const {
    PARMA_REQUIRE(rows >= 2 && cols >= 2, "device needs at least 2 wires per axis");
    PARMA_REQUIRE(drive_voltage > 0.0, "drive voltage must be positive");
  }
};

/// Convenience for the common square device.
DeviceSpec square_device(Index n, Real drive_voltage = kWetLabVoltage);

/// k-dimensional MEA census (paper Section IV-B: "the complexity can be
/// trivially generalized into O(n^{k+1}) for an arbitrary k-dimensional
/// MEA", with (n-1)^k-fold intrinsic parallelism reducing the theoretical
/// parametrization cost to O(n)).
struct KdDeviceSpec {
  Index n = 0;     ///< endpoints per axis
  Index dims = 0;  ///< k

  [[nodiscard]] Index num_resistors() const;       ///< n^k crossing resistors
  [[nodiscard]] Index num_endpoint_pairs() const;  ///< n^k probed pairs
  /// Joint equations per pair: 2 terminals + k*(n-1) intermediate joints.
  [[nodiscard]] Index equations_per_pair() const { return 2 + dims * (n - 1); }
  /// Total equations: n^k * (2 + k(n-1)) = Theta(n^{k+1}) for fixed k.
  [[nodiscard]] Index num_equations() const;
  /// Intermediate voltage unknowns per pair: k*(n-1).
  [[nodiscard]] Index voltages_per_pair() const { return dims * (n - 1); }
  [[nodiscard]] Index num_unknowns() const;
  /// beta_1-derived parallelism: (n-1)^k independent loops per the paper.
  [[nodiscard]] Index intrinsic_parallelism() const;

  void validate() const {
    PARMA_REQUIRE(n >= 2, "k-dim device needs n >= 2");
    PARMA_REQUIRE(dims >= 1 && dims <= 8, "dims in [1, 8]");
  }
};

/// The 2-D specialization must agree with DeviceSpec's census (tested).
KdDeviceSpec kd_device(Index n, Index dims);

}  // namespace parma::mea

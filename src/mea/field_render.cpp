#include "mea/field_render.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"

namespace parma::mea {
namespace {

std::pair<Real, Real> resolve_range(const circuit::ResistanceGrid& grid, Real lo, Real hi) {
  if (lo < hi) return {lo, hi};
  Real min_v = grid.flat().front();
  Real max_v = min_v;
  for (Real v : grid.flat()) {
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  if (max_v <= min_v) max_v = min_v + 1.0;  // constant field
  return {min_v, max_v};
}

Real normalized(Real v, Real lo, Real hi) {
  return std::clamp((v - lo) / (hi - lo), Real{0.0}, Real{1.0});
}

}  // namespace

std::string render_heatmap(const circuit::ResistanceGrid& grid, Real lo, Real hi) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kSteps = static_cast<int>(sizeof(kRamp)) - 2;  // last index
  const auto [min_v, max_v] = resolve_range(grid, lo, hi);
  std::string art;
  art.reserve(static_cast<std::size_t>(grid.rows() * (grid.cols() + 1)));
  for (Index i = 0; i < grid.rows(); ++i) {
    for (Index j = 0; j < grid.cols(); ++j) {
      const Real t = normalized(grid.at(i, j), min_v, max_v);
      art += kRamp[static_cast<int>(t * kSteps + 0.5)];
    }
    art += '\n';
  }
  return art;
}

void write_pgm(const std::string& path, const circuit::ResistanceGrid& grid, Index scale,
               Real lo, Real hi) {
  PARMA_REQUIRE(scale >= 1 && scale <= 64, "scale in [1, 64]");
  const auto [min_v, max_v] = resolve_range(grid, lo, hi);
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");

  const Index width = grid.cols() * scale;
  const Index height = grid.rows() * scale;
  out << "P5\n" << width << ' ' << height << "\n255\n";
  std::string row(static_cast<std::size_t>(width), '\0');
  for (Index i = 0; i < grid.rows(); ++i) {
    for (Index j = 0; j < grid.cols(); ++j) {
      const Real t = normalized(grid.at(i, j), min_v, max_v);
      const char gray = static_cast<char>(static_cast<unsigned char>(t * 255.0 + 0.5));
      for (Index s = 0; s < scale; ++s) row[static_cast<std::size_t>(j * scale + s)] = gray;
    }
    for (Index s = 0; s < scale; ++s) {
      out.write(row.data(), static_cast<std::streamsize>(row.size()));
    }
  }
  if (!out) throw IoError("write to '" + path + "' failed");
}

}  // namespace parma::mea

#include "mea/dataset_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/require.hpp"
#include "common/string_util.hpp"

namespace parma::mea {
namespace {

constexpr const char* kMagic = "# parma-mea v1";

struct Header {
  Index rows = 0;
  Index cols = 0;
  Real voltage = 0.0;
  Real epoch_hours = 0.0;
  std::string block;  // "Z" or "R"
};

void write_grid_file(const std::string& path, const Header& header,
                     const std::vector<Real>& values) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  out << kMagic << '\n';
  out << "rows " << header.rows << '\n';
  out << "cols " << header.cols << '\n';
  out.precision(17);  // round-trip exact for IEEE doubles
  out << "voltage " << header.voltage << '\n';
  out << "epoch_hours " << header.epoch_hours << '\n';
  out << header.block << '\n';
  for (Index i = 0; i < header.rows; ++i) {
    for (Index j = 0; j < header.cols; ++j) {
      if (j) out << ' ';
      out << values[static_cast<std::size_t>(i * header.cols + j)];
    }
    out << '\n';
  }
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::pair<Header, std::vector<Real>> read_grid_file(const std::string& path,
                                                    const std::string& expected_block) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  std::string line;
  auto next_line = [&](const char* what) {
    if (!std::getline(in, line)) throw IoError(std::string("unexpected end of file: ") + what + " (" + path + ")");
    return std::string_view(line);
  };

  if (std::string(trim(next_line("magic"))) != kMagic) {
    throw IoError("bad magic line in '" + path + "'");
  }
  Header header;
  auto read_field = [&](const char* key) -> std::string {
    const std::vector<std::string> parts = split_ws(next_line(key));
    if (parts.size() != 2 || parts[0] != key) {
      throw IoError(std::string("expected '") + key + " <value>' in '" + path + "'");
    }
    return parts[1];
  };
  header.rows = parse_index(read_field("rows"), path);
  header.cols = parse_index(read_field("cols"), path);
  header.voltage = parse_real(read_field("voltage"), path);
  header.epoch_hours = parse_real(read_field("epoch_hours"), path);
  header.block = std::string(trim(next_line("block name")));
  if (header.block != expected_block) {
    throw IoError("expected block '" + expected_block + "' but found '" + header.block +
                  "' in '" + path + "'");
  }
  PARMA_REQUIRE(header.rows >= 1 && header.cols >= 1, "file declares empty grid");

  std::vector<Real> values;
  values.reserve(static_cast<std::size_t>(header.rows * header.cols));
  for (Index i = 0; i < header.rows; ++i) {
    const std::vector<std::string> cells = split_ws(next_line("grid row"));
    if (static_cast<Index>(cells.size()) != header.cols) {
      std::ostringstream os;
      os << "grid row " << i << " has " << cells.size() << " cells, expected " << header.cols
         << " ('" << path << "')";
      throw IoError(os.str());
    }
    for (const auto& cell : cells) values.push_back(parse_real(cell, path));
  }
  return {header, std::move(values)};
}

}  // namespace

void write_measurement(const std::string& path, const Measurement& measurement,
                       Real epoch_hours) {
  measurement.spec.validate();
  Header header{measurement.spec.rows, measurement.spec.cols,
                measurement.spec.drive_voltage, epoch_hours, "Z"};
  std::vector<Real> values;
  values.reserve(static_cast<std::size_t>(header.rows * header.cols));
  for (Index i = 0; i < header.rows; ++i) {
    for (Index j = 0; j < header.cols; ++j) values.push_back(measurement.z(i, j));
  }
  write_grid_file(path, header, values);
}

LoadedMeasurement read_measurement(const std::string& path) {
  const auto [header, values] = read_grid_file(path, "Z");
  LoadedMeasurement loaded;
  loaded.epoch_hours = header.epoch_hours;
  loaded.measurement.spec = DeviceSpec{header.rows, header.cols, header.voltage};
  loaded.measurement.spec.validate();
  loaded.measurement.z = linalg::DenseMatrix(header.rows, header.cols);
  loaded.measurement.u = linalg::DenseMatrix(header.rows, header.cols);
  for (Index i = 0; i < header.rows; ++i) {
    for (Index j = 0; j < header.cols; ++j) {
      loaded.measurement.z(i, j) = values[static_cast<std::size_t>(i * header.cols + j)];
      loaded.measurement.u(i, j) = header.voltage;
    }
  }
  return loaded;
}

void write_truth(const std::string& path, const DeviceSpec& spec,
                 const circuit::ResistanceGrid& grid) {
  spec.validate();
  PARMA_REQUIRE(grid.rows() == spec.rows && grid.cols() == spec.cols,
                "grid does not match device");
  Header header{spec.rows, spec.cols, spec.drive_voltage, 0.0, "R"};
  write_grid_file(path, header, grid.flat());
}

circuit::ResistanceGrid read_truth(const std::string& path) {
  const auto [header, values] = read_grid_file(path, "R");
  circuit::ResistanceGrid grid(header.rows, header.cols);
  grid.flat() = values;
  return grid;
}

}  // namespace parma::mea

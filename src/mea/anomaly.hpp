// Anomaly detection and detection-quality scoring (paper Section II-C: once
// the R values are recovered, "the anomaly can be simply detected").
#pragma once

#include <string>
#include <vector>

#include "circuit/crossbar.hpp"
#include "common/types.hpp"

namespace parma::mea {

struct DetectionReport {
  std::vector<bool> detected;  ///< per-cell mask, row-major
  Index true_positives = 0;
  Index false_positives = 0;
  Index false_negatives = 0;
  Index true_negatives = 0;

  [[nodiscard]] Real precision() const;
  [[nodiscard]] Real recall() const;
  [[nodiscard]] Real f1() const;
};

/// Thresholds the recovered grid at `threshold` kOhm and, when `truth_mask`
/// is non-empty, scores against it.
DetectionReport detect_anomalies(const circuit::ResistanceGrid& recovered, Real threshold,
                                 const std::vector<bool>& truth_mask = {});

/// Midpoint threshold between the wet-lab healthy and anomalous bands.
Real default_threshold();

/// Renders a small grid's mask as ASCII art ('#' anomaly, '.' healthy) for
/// examples and logs.
std::string render_mask(const std::vector<bool>& mask, Index rows, Index cols);

}  // namespace parma::mea

#include "mea/device.hpp"

namespace parma::mea {

DeviceSpec square_device(Index n, Real drive_voltage) {
  DeviceSpec spec{n, n, drive_voltage};
  spec.validate();
  return spec;
}

namespace {

Index pow_index(Index base, Index exp) {
  Index out = 1;
  for (Index i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace

Index KdDeviceSpec::num_resistors() const { return pow_index(n, dims); }

Index KdDeviceSpec::num_endpoint_pairs() const { return pow_index(n, dims); }

Index KdDeviceSpec::num_equations() const {
  return num_endpoint_pairs() * equations_per_pair();
}

Index KdDeviceSpec::num_unknowns() const {
  return num_resistors() + num_endpoint_pairs() * voltages_per_pair();
}

Index KdDeviceSpec::intrinsic_parallelism() const { return pow_index(n - 1, dims); }

KdDeviceSpec kd_device(Index n, Index dims) {
  KdDeviceSpec spec{n, dims};
  spec.validate();
  return spec;
}

}  // namespace parma::mea

// Four-epoch measurement campaigns.
//
// The paper's wet lab measures "four times a day: 0 hour, 6 hour, 12 hour and
// 24 hour, after the device setup is completed" (Section V-B). This module
// simulates a growing anomaly across those epochs: each blob's radii and peak
// expand with a per-epoch growth factor, modeling tissue change over a day.
#pragma once

#include <vector>

#include "mea/generator.hpp"
#include "mea/measurement.hpp"

namespace parma::mea {

/// The wet lab's sampling schedule, in hours after setup.
inline constexpr Real kWetLabEpochsHours[] = {0.0, 6.0, 12.0, 24.0};

struct EpochFrame {
  Real hours = 0.0;
  circuit::ResistanceGrid truth;
  Measurement measurement;
};

struct TimeSeriesOptions {
  GeneratorOptions scenario;       ///< epoch-0 anomaly layout
  Real growth_per_hour = 0.02;     ///< fractional radius growth per hour
  Real peak_growth_per_hour = 0.005;  ///< fractional peak-resistance growth per hour
  MeasurementOptions measurement;  ///< per-epoch instrument noise
};

/// Simulates the full 0/6/12/24-hour campaign for one device.
std::vector<EpochFrame> simulate_campaign(const DeviceSpec& spec,
                                          const TimeSeriesOptions& options, Rng& rng);

/// Writes a campaign as one file per epoch under `directory`
/// (epoch_<hours>h.txt), returning the file paths.
std::vector<std::string> write_campaign(const std::string& directory,
                                        const std::vector<EpochFrame>& frames);

}  // namespace parma::mea

// Resistance-field visualization: ASCII heatmaps for terminals and binary
// PGM (portable graymap) images for reports. The wet-lab workflow's last
// step is a clinician looking at the recovered field; these renderers are
// that step.
#pragma once

#include <string>

#include "circuit/crossbar.hpp"

namespace parma::mea {

/// ASCII heatmap: one character per cell from a 10-step ramp " .:-=+*#%@",
/// scaled between lo and hi (values clamp). lo >= hi uses the field's range.
std::string render_heatmap(const circuit::ResistanceGrid& grid, Real lo = 0.0, Real hi = 0.0);

/// Writes an 8-bit binary PGM (P5) image, one pixel per cell, optionally
/// upscaled by `scale` (nearest neighbour). Grayscale maps lo -> black,
/// hi -> white; lo >= hi uses the field's range.
void write_pgm(const std::string& path, const circuit::ResistanceGrid& grid,
               Index scale = 8, Real lo = 0.0, Real hi = 0.0);

}  // namespace parma::mea

// Text-format persistence for measurement data.
//
// The paper's wet lab saved measurements as Excel files "converted into text
// files before being fed to the Parma system prototype" (Section V-B). This
// module defines that text format:
//
//   # parma-mea v1
//   rows <m>
//   cols <n>
//   voltage <volts>
//   epoch_hours <h>
//   Z
//   <m rows of n whitespace-separated kOhm values>
//
// plus reader/writer pairs and round-trip guarantees covered by tests.
#pragma once

#include <string>

#include "mea/measurement.hpp"

namespace parma::mea {

/// Serializes a measurement (epoch_hours annotates time-series membership).
void write_measurement(const std::string& path, const Measurement& measurement,
                       Real epoch_hours = 0.0);

struct LoadedMeasurement {
  Measurement measurement;
  Real epoch_hours = 0.0;
};

/// Parses a measurement file; throws parma::IoError with line context on any
/// malformed input.
LoadedMeasurement read_measurement(const std::string& path);

/// Serializes a ground-truth resistance field (same grid block, header
/// `R` instead of `Z`) for experiment provenance.
void write_truth(const std::string& path, const DeviceSpec& spec,
                 const circuit::ResistanceGrid& grid);

circuit::ResistanceGrid read_truth(const std::string& path);

}  // namespace parma::mea

#include "mea/measurement.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace parma::mea {

Measurement measure(const DeviceSpec& spec, const circuit::ResistanceGrid& truth,
                    const MeasurementOptions& options, Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(truth.rows() == spec.rows && truth.cols() == spec.cols,
                "ground-truth grid does not match device");
  PARMA_REQUIRE(options.noise_fraction >= 0.0 && options.noise_fraction < 0.5,
                "noise fraction in [0, 0.5)");

  Measurement m;
  m.spec = spec;
  m.z = circuit::measure_all_pairs(truth);
  m.u = linalg::DenseMatrix(spec.rows, spec.cols);
  for (Index i = 0; i < spec.rows; ++i) {
    for (Index j = 0; j < spec.cols; ++j) {
      if (options.noise_fraction > 0.0) {
        m.z(i, j) *= std::max(0.5, 1.0 + rng.normal(0.0, options.noise_fraction));
      }
      m.u(i, j) = spec.drive_voltage;
    }
  }
  return m;
}

Measurement measure_exact(const DeviceSpec& spec, const circuit::ResistanceGrid& truth) {
  Rng unused(0);
  return measure(spec, truth, MeasurementOptions{}, unused);
}

void validate_measurement(const Measurement& measurement) {
  const auto fail = [](const char* what, Index i, Index j, Real value) {
    std::ostringstream os;
    os << "invalid measurement: " << what << " at (" << i << ", " << j << "): " << value;
    throw InvalidMeasurement(os.str());
  };
  for (Index i = 0; i < measurement.z.rows(); ++i) {
    for (Index j = 0; j < measurement.z.cols(); ++j) {
      const Real z = measurement.z(i, j);
      if (!std::isfinite(z)) fail("non-finite Z", i, j, z);
      if (z <= 0.0) fail("non-positive Z", i, j, z);
    }
  }
  for (Index i = 0; i < measurement.u.rows(); ++i) {
    for (Index j = 0; j < measurement.u.cols(); ++j) {
      const Real u = measurement.u(i, j);
      if (!std::isfinite(u)) fail("non-finite U", i, j, u);
    }
  }
}

}  // namespace parma::mea

#include "mea/measurement.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace parma::mea {

Measurement measure(const DeviceSpec& spec, const circuit::ResistanceGrid& truth,
                    const MeasurementOptions& options, Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(truth.rows() == spec.rows && truth.cols() == spec.cols,
                "ground-truth grid does not match device");
  PARMA_REQUIRE(options.noise_fraction >= 0.0 && options.noise_fraction < 0.5,
                "noise fraction in [0, 0.5)");

  Measurement m;
  m.spec = spec;
  m.z = circuit::measure_all_pairs(truth);
  m.u = linalg::DenseMatrix(spec.rows, spec.cols);
  for (Index i = 0; i < spec.rows; ++i) {
    for (Index j = 0; j < spec.cols; ++j) {
      if (options.noise_fraction > 0.0) {
        m.z(i, j) *= std::max(0.5, 1.0 + rng.normal(0.0, options.noise_fraction));
      }
      m.u(i, j) = spec.drive_voltage;
    }
  }
  return m;
}

Measurement measure_exact(const DeviceSpec& spec, const circuit::ResistanceGrid& truth) {
  Rng unused(0);
  return measure(spec, truth, MeasurementOptions{}, unused);
}

}  // namespace parma::mea

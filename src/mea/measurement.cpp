#include "mea/measurement.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace parma::mea {

Index MeasurementMask::masked_count() const {
  Index count = 0;
  for (const std::uint8_t b : bits) {
    if (b == 0) ++count;
  }
  return count;
}

std::uint64_t MeasurementMask::signature() const {
  if (all_valid()) return 0;
  // FNV-1a over the shape and the bit vector.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(rows));
  mix(static_cast<std::uint64_t>(cols));
  for (const std::uint8_t b : bits) {
    h ^= b;
    h *= 1099511628211ull;
  }
  // 0 is reserved for "unmasked / all valid".
  return h == 0 ? 1 : h;
}

Index masked_entry_count(const Measurement& m) {
  return m.mask ? m.mask->masked_count() : 0;
}

std::uint64_t mask_signature(const Measurement& m) {
  return m.mask ? m.mask->signature() : 0;
}

Index mask_invalid_entries(Measurement& m) {
  Index newly_masked = 0;
  for (Index i = 0; i < m.z.rows(); ++i) {
    for (Index j = 0; j < m.z.cols(); ++j) {
      const Real z = m.z(i, j);
      if (std::isfinite(z) && z > 0.0) continue;
      if (m.mask && !m.mask->valid(i, j)) continue;  // already masked
      if (!m.mask) m.mask.emplace(m.z.rows(), m.z.cols());
      m.mask->drop(i, j);
      ++newly_masked;
    }
  }
  return newly_masked;
}

Measurement measure(const DeviceSpec& spec, const circuit::ResistanceGrid& truth,
                    const MeasurementOptions& options, Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(truth.rows() == spec.rows && truth.cols() == spec.cols,
                "ground-truth grid does not match device");
  PARMA_REQUIRE(options.noise_fraction >= 0.0 && options.noise_fraction < 0.5,
                "noise fraction in [0, 0.5)");

  Measurement m;
  m.spec = spec;
  m.z = circuit::measure_all_pairs(truth);
  m.u = linalg::DenseMatrix(spec.rows, spec.cols);
  for (Index i = 0; i < spec.rows; ++i) {
    for (Index j = 0; j < spec.cols; ++j) {
      if (options.noise_fraction > 0.0) {
        m.z(i, j) *= std::max(0.5, 1.0 + rng.normal(0.0, options.noise_fraction));
      }
      m.u(i, j) = spec.drive_voltage;
    }
  }
  return m;
}

Measurement measure_exact(const DeviceSpec& spec, const circuit::ResistanceGrid& truth) {
  Rng unused(0);
  return measure(spec, truth, MeasurementOptions{}, unused);
}

void validate_measurement(const Measurement& measurement) {
  const auto fail = [](const char* what, Index i, Index j, Real value) {
    std::ostringstream os;
    os << "invalid measurement: " << what << " at (" << i << ", " << j << "): " << value;
    throw InvalidMeasurement(os.str());
  };
  const Real volts = measurement.spec.drive_voltage;
  if (!std::isfinite(volts)) {
    std::ostringstream os;
    os << "invalid measurement: non-finite drive voltage: " << volts;
    throw InvalidMeasurement(os.str());
  }
  if (volts <= 0.0) {
    std::ostringstream os;
    os << "invalid measurement: non-positive drive voltage: " << volts;
    throw InvalidMeasurement(os.str());
  }
  if (measurement.mask) {
    const MeasurementMask& mask = *measurement.mask;
    if (mask.rows != measurement.z.rows() || mask.cols != measurement.z.cols() ||
        static_cast<Index>(mask.bits.size()) != mask.rows * mask.cols) {
      throw InvalidMeasurement("invalid measurement: mask shape does not match Z");
    }
    if (mask.masked_count() == mask.rows * mask.cols) {
      throw InvalidMeasurement("invalid measurement: every entry is masked out");
    }
  }
  for (Index i = 0; i < measurement.z.rows(); ++i) {
    for (Index j = 0; j < measurement.z.cols(); ++j) {
      if (!entry_valid(measurement, i, j)) continue;
      const Real z = measurement.z(i, j);
      if (!std::isfinite(z)) fail("non-finite Z", i, j, z);
      if (z <= 0.0) fail("non-positive Z", i, j, z);
    }
  }
  for (Index i = 0; i < measurement.u.rows(); ++i) {
    for (Index j = 0; j < measurement.u.cols(); ++j) {
      if (!entry_valid(measurement, i, j)) continue;
      const Real u = measurement.u(i, j);
      if (!std::isfinite(u)) fail("non-finite U", i, j, u);
    }
  }
}

}  // namespace parma::mea

// Synthetic ground-truth resistance fields.
//
// Substitution for the paper's wet-lab measurements (DESIGN.md Section 2):
// healthy tissue sits near the bottom of the 2,000-11,000 kilo-ohm band the
// paper reports, while anomalies (the cancerous regions the device exists to
// find) raise local resistance toward the top of the band. Fields are
// generated from elliptical anomaly blobs with smooth falloff plus
// multiplicative cell-to-cell jitter, all driven by an explicit Rng so every
// benchmark and test is reproducible.
#pragma once

#include <vector>

#include "circuit/crossbar.hpp"
#include "common/rng.hpp"
#include "mea/device.hpp"

namespace parma::mea {

/// An elliptical high-resistance region, in grid coordinates.
struct AnomalyBlob {
  Real center_row = 0.0;
  Real center_col = 0.0;
  Real radius_row = 1.0;
  Real radius_col = 1.0;
  Real peak_resistance = kWetLabMaxResistanceKOhm;  ///< kOhm at blob center
};

struct GeneratorOptions {
  Real healthy_resistance = kWetLabMinResistanceKOhm;  ///< baseline kOhm
  Real jitter_fraction = 0.02;  ///< multiplicative cell noise (stddev)
  std::vector<AnomalyBlob> anomalies;
};

/// Deterministic field from explicit blob placement.
circuit::ResistanceGrid generate_field(const DeviceSpec& spec, const GeneratorOptions& options,
                                       Rng& rng);

/// Randomized scenario: `num_anomalies` blobs with sizes scaled to the grid.
GeneratorOptions random_scenario(const DeviceSpec& spec, Index num_anomalies, Rng& rng);

/// Boolean mask of cells whose ground-truth resistance exceeds `threshold`.
std::vector<bool> anomaly_mask(const circuit::ResistanceGrid& grid, Real threshold);

}  // namespace parma::mea

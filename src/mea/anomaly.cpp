#include "mea/anomaly.hpp"

#include <string>

#include "common/require.hpp"

namespace parma::mea {

Real DetectionReport::precision() const {
  const Index denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<Real>(true_positives) / static_cast<Real>(denom);
}

Real DetectionReport::recall() const {
  const Index denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<Real>(true_positives) / static_cast<Real>(denom);
}

Real DetectionReport::f1() const {
  const Real p = precision();
  const Real r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

DetectionReport detect_anomalies(const circuit::ResistanceGrid& recovered, Real threshold,
                                 const std::vector<bool>& truth_mask) {
  PARMA_REQUIRE(threshold > 0.0, "threshold must be positive");
  DetectionReport report;
  const auto& values = recovered.flat();
  report.detected.reserve(values.size());
  for (Real v : values) report.detected.push_back(v > threshold);

  if (!truth_mask.empty()) {
    PARMA_REQUIRE(truth_mask.size() == values.size(), "truth mask size mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
      const bool detected = report.detected[i];
      const bool truth = truth_mask[i];
      if (detected && truth) ++report.true_positives;
      else if (detected && !truth) ++report.false_positives;
      else if (!detected && truth) ++report.false_negatives;
      else ++report.true_negatives;
    }
  }
  return report;
}

Real default_threshold() {
  return 0.5 * (kWetLabMinResistanceKOhm + kWetLabMaxResistanceKOhm);
}

std::string render_mask(const std::vector<bool>& mask, Index rows, Index cols) {
  PARMA_REQUIRE(mask.size() == static_cast<std::size_t>(rows * cols), "mask size mismatch");
  std::string art;
  art.reserve(static_cast<std::size_t>(rows * (cols + 1)));
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      art += mask[static_cast<std::size_t>(i * cols + j)] ? '#' : '.';
    }
    art += '\n';
  }
  return art;
}

}  // namespace parma::mea

// Measurement simulation: what the wet-lab rig reports for a device placed
// on a medium with ground-truth resistance field R.
//
// The rig drives `drive_voltage` across each (horizontal, vertical) wire pair
// and reports the pairwise resistance Z_ij; physically that is the two-point
// effective resistance of the K_{m,n} network (see circuit/crossbar.hpp),
// optionally corrupted by multiplicative instrument noise.
#pragma once

#include "circuit/crossbar.hpp"
#include "common/rng.hpp"
#include "linalg/dense_matrix.hpp"
#include "mea/device.hpp"

namespace parma::mea {

/// One measurement session: everything Parma's inverse problem consumes.
struct Measurement {
  DeviceSpec spec;
  linalg::DenseMatrix z;  ///< pairwise resistance Z(i, j), kOhm
  /// End-to-end voltage per pair; the rig drives a constant supply, so every
  /// entry equals spec.drive_voltage (kept per-pair for format fidelity with
  /// the wet lab's dumps).
  linalg::DenseMatrix u;
};

struct MeasurementOptions {
  /// Multiplicative Gaussian instrument noise (stddev as a fraction of Z);
  /// 0 gives exact synthetic measurements.
  Real noise_fraction = 0.0;
};

/// Simulates a full measurement sweep of `truth`.
Measurement measure(const DeviceSpec& spec, const circuit::ResistanceGrid& truth,
                    const MeasurementOptions& options, Rng& rng);

/// Noise-free convenience overload.
Measurement measure_exact(const DeviceSpec& spec, const circuit::ResistanceGrid& truth);

}  // namespace parma::mea

// Measurement simulation: what the wet-lab rig reports for a device placed
// on a medium with ground-truth resistance field R.
//
// The rig drives `drive_voltage` across each (horizontal, vertical) wire pair
// and reports the pairwise resistance Z_ij; physically that is the two-point
// effective resistance of the K_{m,n} network (see circuit/crossbar.hpp),
// optionally corrupted by multiplicative instrument noise.
//
// Real traffic also delivers *incomplete* sweeps: dropped pads and failed ADC
// reads leave holes in Z. MeasurementMask records which entries were actually
// measured; downstream consumers (equation generation, both solvers,
// validation) exclude masked entries from the fit instead of letting a NaN or
// a garbage read poison the whole recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "circuit/crossbar.hpp"
#include "common/rng.hpp"
#include "linalg/dense_matrix.hpp"
#include "mea/device.hpp"

namespace parma::mea {

/// A measurement whose payload is physically impossible: non-finite or
/// non-positive Z (two-point resistance of a positive network is > 0), a
/// non-finite drive voltage, or a malformed mask. Thrown by
/// validate_measurement; callers that admit external data (core::Engine,
/// serve admission) surface it as a typed invalid-input error instead of
/// letting NaN reach the solver.
class InvalidMeasurement : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-entry validity of one Z sweep: bits(i, j) == 1 means pair (i, j) was
/// actually measured. Masked entries are excluded from equation generation
/// and from every residual -- recovery under partial boundary data stays
/// well-posed because only the two terminal (Z-consuming) equations of a
/// masked pair drop out, leaving its interior-voltage system square.
struct MeasurementMask {
  Index rows = 0;
  Index cols = 0;
  std::vector<std::uint8_t> bits;  ///< row-major; 1 = measured, 0 = dropped

  MeasurementMask() = default;
  MeasurementMask(Index rows, Index cols)
      : rows(rows), cols(cols),
        bits(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 1) {}

  [[nodiscard]] bool valid(Index i, Index j) const {
    return bits[static_cast<std::size_t>(i * cols + j)] != 0;
  }
  void drop(Index i, Index j) { bits[static_cast<std::size_t>(i * cols + j)] = 0; }

  [[nodiscard]] Index masked_count() const;
  [[nodiscard]] bool all_valid() const { return masked_count() == 0; }

  /// 64-bit FNV-1a over (rows, cols, bits), forced non-zero -- EXCEPT that an
  /// all-valid mask returns exactly 0, the same signature as "no mask at
  /// all". That makes an all-true mask share symbolic-cache entries (and the
  /// formation structure) with the unmasked path.
  [[nodiscard]] std::uint64_t signature() const;
};

/// One measurement session: everything Parma's inverse problem consumes.
struct Measurement {
  DeviceSpec spec;
  linalg::DenseMatrix z;  ///< pairwise resistance Z(i, j), kOhm
  /// End-to-end voltage per pair; the rig drives a constant supply, so every
  /// entry equals spec.drive_voltage (kept per-pair for format fidelity with
  /// the wet lab's dumps).
  linalg::DenseMatrix u;
  /// Which Z entries were actually measured; nullopt = complete sweep.
  std::optional<MeasurementMask> mask;
};

/// True when pair (i, j) carries a usable Z entry (no mask, or mask bit set).
[[nodiscard]] inline bool entry_valid(const Measurement& m, Index i, Index j) {
  return !m.mask || m.mask->valid(i, j);
}

/// Number of masked-out entries (0 when unmasked).
[[nodiscard]] Index masked_entry_count(const Measurement& m);

/// The mask's signature, 0 when unmasked or all-valid (see
/// MeasurementMask::signature).
[[nodiscard]] std::uint64_t mask_signature(const Measurement& m);

/// Auto-masking for dirty sweeps: every non-finite or non-positive Z entry
/// gets its mask bit cleared (materializing the mask if needed). Returns the
/// number of entries newly masked. The payload values are left in place --
/// masked entries are simply never read downstream.
Index mask_invalid_entries(Measurement& m);

struct MeasurementOptions {
  /// Multiplicative Gaussian instrument noise (stddev as a fraction of Z);
  /// 0 gives exact synthetic measurements.
  Real noise_fraction = 0.0;
};

/// Simulates a full measurement sweep of `truth`.
Measurement measure(const DeviceSpec& spec, const circuit::ResistanceGrid& truth,
                    const MeasurementOptions& options, Rng& rng);

/// Noise-free convenience overload.
Measurement measure_exact(const DeviceSpec& spec, const circuit::ResistanceGrid& truth);

/// Payload validation (spec/shape checks live in DeviceSpec::validate and
/// the consumers): every unmasked Z entry finite and positive, every unmasked
/// U entry finite, drive voltage finite and positive, mask (when present)
/// shaped like Z with at least one valid entry. Throws InvalidMeasurement
/// naming the first offending entry.
void validate_measurement(const Measurement& measurement);

}  // namespace parma::mea

// Measurement simulation: what the wet-lab rig reports for a device placed
// on a medium with ground-truth resistance field R.
//
// The rig drives `drive_voltage` across each (horizontal, vertical) wire pair
// and reports the pairwise resistance Z_ij; physically that is the two-point
// effective resistance of the K_{m,n} network (see circuit/crossbar.hpp),
// optionally corrupted by multiplicative instrument noise.
#pragma once

#include <stdexcept>

#include "circuit/crossbar.hpp"
#include "common/rng.hpp"
#include "linalg/dense_matrix.hpp"
#include "mea/device.hpp"

namespace parma::mea {

/// A measurement whose payload is physically impossible: non-finite or
/// non-positive Z (two-point resistance of a positive network is > 0), or a
/// non-finite drive voltage. Thrown by validate_measurement; callers that
/// admit external data (core::Engine, serve admission) surface it as a typed
/// invalid-input error instead of letting NaN reach the solver.
class InvalidMeasurement : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One measurement session: everything Parma's inverse problem consumes.
struct Measurement {
  DeviceSpec spec;
  linalg::DenseMatrix z;  ///< pairwise resistance Z(i, j), kOhm
  /// End-to-end voltage per pair; the rig drives a constant supply, so every
  /// entry equals spec.drive_voltage (kept per-pair for format fidelity with
  /// the wet lab's dumps).
  linalg::DenseMatrix u;
};

struct MeasurementOptions {
  /// Multiplicative Gaussian instrument noise (stddev as a fraction of Z);
  /// 0 gives exact synthetic measurements.
  Real noise_fraction = 0.0;
};

/// Simulates a full measurement sweep of `truth`.
Measurement measure(const DeviceSpec& spec, const circuit::ResistanceGrid& truth,
                    const MeasurementOptions& options, Rng& rng);

/// Noise-free convenience overload.
Measurement measure_exact(const DeviceSpec& spec, const circuit::ResistanceGrid& truth);

/// Payload validation (spec/shape checks live in DeviceSpec::validate and
/// the consumers): every Z entry finite and positive, every U entry finite.
/// Throws InvalidMeasurement naming the first offending entry.
void validate_measurement(const Measurement& measurement);

}  // namespace parma::mea

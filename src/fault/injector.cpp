#include "fault/injector.hpp"

#include "common/require.hpp"

namespace parma::fault {

namespace detail {
std::atomic<Injector*> g_injector{nullptr};
}  // namespace detail

namespace {

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the combined
/// (seed, point, query) identity. Same construction as Rng's seeding.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* point_name(Point point) {
  switch (point) {
    case Point::kDropMeasurement: return "drop-measurement";
    case Point::kNoiseMeasurement: return "noise-measurement";
    case Point::kCgNonConvergence: return "cg-non-convergence";
    case Point::kTaskFailure: return "task-failure";
    case Point::kSlowTask: return "slow-task";
    case Point::kAllocFailure: return "alloc-failure";
    case Point::kSockTornWrite: return "sock-torn-write";
    case Point::kSockReadStall: return "sock-read-stall";
    case Point::kSockReset: return "sock-reset";
    case Point::kSockConnectDelay: return "sock-connect-delay";
    case Point::kSockCorruptByte: return "sock-corrupt-byte";
    case Point::kWorkerCrash: return "worker-crash";
  }
  return "?";
}

Injector::Injector(std::uint64_t seed) : seed_(seed) {}

void Injector::arm(Point point, Schedule schedule) {
  PARMA_REQUIRE(schedule.probability >= 0.0 && schedule.probability <= 1.0,
                "fault probability must be in [0, 1]");
  PointState& state = points_[static_cast<std::size_t>(point)];
  state.probability.store(schedule.probability, std::memory_order_relaxed);
  state.max_fires.store(schedule.max_fires, std::memory_order_relaxed);
  state.skip_first.store(schedule.skip_first, std::memory_order_relaxed);
}

void Injector::arm_all(Schedule schedule) {
  for (int p = 0; p < kNumPoints; ++p) arm(static_cast<Point>(p), schedule);
}

bool Injector::should_fire(Point point) {
  PointState& state = points_[static_cast<std::size_t>(point)];
  // Claim this query's index first so the (seed, point, index) decision is
  // stable no matter how threads interleave.
  const std::uint64_t query = state.queries.fetch_add(1, std::memory_order_relaxed);
  const Real probability = state.probability.load(std::memory_order_relaxed);
  if (probability <= 0.0) return false;
  if (query < state.skip_first.load(std::memory_order_relaxed)) return false;
  if (probability < 1.0) {
    const std::uint64_t draw = mix64(
        mix64(seed_ ^ (static_cast<std::uint64_t>(point) + 1)) + query);
    // Top 53 bits -> uniform double in [0, 1), the same mapping Rng uses.
    const Real u = static_cast<Real>(draw >> 11) * 0x1.0p-53;
    if (u >= probability) return false;
  }
  // Claim one of the max_fires slots; losing the CAS race re-checks the cap.
  const std::uint64_t max_fires = state.max_fires.load(std::memory_order_relaxed);
  std::uint64_t fired = state.fires.load(std::memory_order_relaxed);
  do {
    if (fired >= max_fires) return false;
  } while (!state.fires.compare_exchange_weak(fired, fired + 1,
                                              std::memory_order_relaxed));
  return true;
}

std::uint64_t Injector::queries(Point point) const {
  return points_[static_cast<std::size_t>(point)].queries.load(std::memory_order_relaxed);
}

std::uint64_t Injector::fires(Point point) const {
  return points_[static_cast<std::size_t>(point)].fires.load(std::memory_order_relaxed);
}

std::uint64_t Injector::total_fires() const {
  std::uint64_t total = 0;
  for (int p = 0; p < kNumPoints; ++p) total += fires(static_cast<Point>(p));
  return total;
}

void install(Injector* injector) {
  detail::g_injector.store(injector, std::memory_order_release);
}

}  // namespace parma::fault

// parma::fault -- deterministic, seeded fault injection for chaos testing.
//
// The library is compiled with named injection points at the spots that can
// fail in production: measurement entries can drop or pick up noise in
// flight, the CG solve can refuse to converge, an executor chunk can throw
// or stall, an allocation can fail. Each point is a single inline call
//
//   if (fault::should_fire(fault::Point::kCgNonConvergence)) { ... }
//
// which costs one relaxed atomic load and a predictable branch when no
// injector is installed -- the disabled configuration is the production
// configuration, and bench/fault_overhead.cpp holds it to <2% serve
// throughput overhead.
//
// Decisions are deterministic: whether query #q at point p fires depends
// only on (seed, p, q) via a SplitMix64-style hash, never on thread
// interleaving, so a chaos run with a given seed injects a reproducible
// fault schedule. Per-point schedules bound the blast radius (probability,
// max_fires, skip_first), which is how tests arrange "faults that are
// retried away": a point armed with max_fires = 1 poisons the first attempt
// and leaves every retry clean.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"

namespace parma::fault {

/// Named injection points compiled into the library.
enum class Point : int {
  kDropMeasurement = 0,  ///< serve: one Z entry becomes NaN for this attempt
  kNoiseMeasurement,     ///< serve: one Z entry is negated for this attempt
  kCgNonConvergence,     ///< linalg: conjugate_gradient reports converged=false
  kTaskFailure,          ///< exec: a bulk chunk throws InjectedFault
  kSlowTask,             ///< exec: a bulk chunk stalls for Injector::stall
  kAllocFailure,         ///< serve: the form stage throws std::bad_alloc
  // Socket fault points (net/socket_ops shim). The schedule discipline is
  // identical to the in-process points: one atomic load when disabled, a
  // deterministic (seed, point, index) decision when armed.
  kSockTornWrite,     ///< net: a send/writev delivers only a byte prefix
  kSockReadStall,     ///< net: a recv stalls for Injector::stall first
  kSockReset,         ///< net: the socket is shut down mid-operation (RST-ish)
  kSockConnectDelay,  ///< net: a connect attempt stalls for Injector::stall
  kSockCorruptByte,   ///< net: one received byte arrives flipped
  /// cluster: the worker process exits abruptly (_exit, no teardown) -- the
  /// supervisor's crash-detect/restart path, testable without a raw kill(2).
  /// Queried by the worker's main loop on its poll tick.
  kWorkerCrash,
};

inline constexpr int kNumPoints = 12;

const char* point_name(Point point);

/// Thrown by a fired kTaskFailure point (and usable by tests to distinguish
/// injected failures from organic ones).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-point firing schedule.
struct Schedule {
  /// Probability that a query fires, in [0, 1]. 0 disarms the point.
  Real probability = 0.0;
  /// Hard cap on total fires at this point (claimed atomically, so the cap
  /// holds under concurrency). Defaults to unlimited.
  std::uint64_t max_fires = ~std::uint64_t{0};
  /// Queries to let through before the schedule applies.
  std::uint64_t skip_first = 0;
};

/// Seeded, thread-safe fault injector. should_fire is safe from any thread,
/// and so is arm/arm_all on a live injector -- the schedule fields are
/// individually atomic, so a test may arm a point mid-flight (e.g. after a
/// connection is established, to spare the setup syscalls). A query racing
/// an arm sees either the old or the new schedule; once the arm completes,
/// the (seed, point, index) decision is deterministic as before.
class Injector {
 public:
  explicit Injector(std::uint64_t seed = 0);

  void arm(Point point, Schedule schedule);
  void arm_all(Schedule schedule);

  /// Decides query #n at `point` (n = this point's query counter, claimed
  /// atomically). Deterministic in (seed, point, n); thread-safe.
  bool should_fire(Point point);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t queries(Point point) const;
  [[nodiscard]] std::uint64_t fires(Point point) const;
  [[nodiscard]] std::uint64_t total_fires() const;

  /// How long a fired kSlowTask point stalls its chunk.
  std::chrono::milliseconds stall{2};

 private:
  struct PointState {
    // The schedule, field-atomic so arm() may race in-flight queries.
    std::atomic<Real> probability{0.0};
    std::atomic<std::uint64_t> max_fires{~std::uint64_t{0}};
    std::atomic<std::uint64_t> skip_first{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> fires{0};
  };

  std::uint64_t seed_;
  std::array<PointState, kNumPoints> points_;
};

namespace detail {
extern std::atomic<Injector*> g_injector;
}

/// Installs `injector` as the process-wide active injector; nullptr disarms.
/// Not meant to race with in-flight work at the injection points.
void install(Injector* injector);

/// The active injector, or nullptr when fault injection is disabled.
inline Injector* installed() noexcept {
  return detail::g_injector.load(std::memory_order_acquire);
}

/// The hot-path check every injection point uses. When no injector is
/// installed this is one atomic load + branch.
inline bool should_fire(Point point) {
  Injector* injector = installed();
  return injector != nullptr && injector->should_fire(point);
}

/// RAII install/uninstall for tests:
///   fault::ScopedInjector chaos(seed);
///   chaos->arm(fault::Point::kTaskFailure, {1.0, 1});
class ScopedInjector {
 public:
  explicit ScopedInjector(std::uint64_t seed = 0) : injector_(seed) {
    install(&injector_);
  }
  ~ScopedInjector() { install(nullptr); }

  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

  Injector* operator->() { return &injector_; }
  [[nodiscard]] Injector& get() { return injector_; }

 private:
  Injector injector_;
};

}  // namespace parma::fault

#include "serve/circuit_breaker.hpp"

namespace parma::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void Breaker::open(Clock::time_point now) {
  state = BreakerState::kOpen;
  opened_at = now;
  consecutive_failures = 0;
  probe_in_flight = false;
}

bool Breaker::allow(const BreakerOptions& options, Clock::time_point now) {
  if (options.failure_threshold <= 0) return true;
  switch (state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at < options.cooldown) return false;
      state = BreakerState::kHalfOpen;
      probe_in_flight = true;
      return true;  // this request is the probe
    case BreakerState::kHalfOpen:
      if (probe_in_flight) return false;  // one probe at a time
      probe_in_flight = true;
      return true;
  }
  return true;
}

bool Breaker::on_failure(const BreakerOptions& options, Clock::time_point now) {
  switch (state) {
    case BreakerState::kHalfOpen:
      // The probe failed: straight back to open for another cooldown.
      open(now);
      return true;
    case BreakerState::kClosed:
      if (++consecutive_failures >= options.failure_threshold) {
        open(now);
        return true;
      }
      return false;
    case BreakerState::kOpen:
      // A request that was already in flight when the breaker opened; the
      // breaker is open, nothing more to record.
      return false;
  }
  return false;
}

void Breaker::on_neutral() {
  if (state == BreakerState::kHalfOpen) {
    probe_in_flight = false;  // let another probe try
  }
}

BreakerBoard::BreakerBoard(BreakerOptions options) : options_(options) {}

bool BreakerBoard::allow(const Shape& shape, Clock::time_point now) {
  if (options_.failure_threshold <= 0) return true;
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  if (it == breakers_.end()) return true;  // never failed: implicitly closed
  return it->second.allow(options_, now);
}

void BreakerBoard::on_success(const Shape& shape) {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  if (it == breakers_.end()) return;
  it->second.on_success();
}

void BreakerBoard::on_failure(const Shape& shape, Clock::time_point now) {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lock(mu_);
  if (breakers_[shape].on_failure(options_, now)) ++opened_events_;
}

void BreakerBoard::on_neutral(const Shape& shape) {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  if (it == breakers_.end()) return;
  it->second.on_neutral();
}

BreakerState BreakerBoard::state(const Shape& shape) const {
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

std::size_t BreakerBoard::open_shapes() const {
  std::lock_guard lock(mu_);
  std::size_t open = 0;
  for (const auto& [shape, breaker] : breakers_) {
    if (breaker.state != BreakerState::kClosed) ++open;
  }
  return open;
}

std::uint64_t BreakerBoard::opened_events() const {
  std::lock_guard lock(mu_);
  return opened_events_;
}

}  // namespace parma::serve

#include "serve/circuit_breaker.hpp"

namespace parma::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

BreakerBoard::BreakerBoard(BreakerOptions options) : options_(options) {}

void BreakerBoard::open(Breaker& breaker, Clock::time_point now) {
  breaker.state = BreakerState::kOpen;
  breaker.opened_at = now;
  breaker.consecutive_failures = 0;
  breaker.probe_in_flight = false;
  ++opened_events_;
}

bool BreakerBoard::allow(const Shape& shape, Clock::time_point now) {
  if (options_.failure_threshold <= 0) return true;
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  if (it == breakers_.end()) return true;  // never failed: implicitly closed
  Breaker& breaker = it->second;
  switch (breaker.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - breaker.opened_at < options_.cooldown) return false;
      breaker.state = BreakerState::kHalfOpen;
      breaker.probe_in_flight = true;
      return true;  // this request is the probe
    case BreakerState::kHalfOpen:
      if (breaker.probe_in_flight) return false;  // one probe at a time
      breaker.probe_in_flight = true;
      return true;
  }
  return true;
}

void BreakerBoard::on_success(const Shape& shape) {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  if (it == breakers_.end()) return;
  it->second = Breaker{};  // fully healthy again
}

void BreakerBoard::on_failure(const Shape& shape, Clock::time_point now) {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lock(mu_);
  Breaker& breaker = breakers_[shape];
  switch (breaker.state) {
    case BreakerState::kHalfOpen:
      // The probe failed: straight back to open for another cooldown.
      open(breaker, now);
      break;
    case BreakerState::kClosed:
      if (++breaker.consecutive_failures >= options_.failure_threshold) {
        open(breaker, now);
      }
      break;
    case BreakerState::kOpen:
      // A request that was already in flight when the breaker opened; the
      // breaker is open, nothing more to record.
      break;
  }
}

void BreakerBoard::on_neutral(const Shape& shape) {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  if (it == breakers_.end()) return;
  if (it->second.state == BreakerState::kHalfOpen) {
    it->second.probe_in_flight = false;  // let another probe try
  }
}

BreakerState BreakerBoard::state(const Shape& shape) const {
  std::lock_guard lock(mu_);
  auto it = breakers_.find(shape);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

std::size_t BreakerBoard::open_shapes() const {
  std::lock_guard lock(mu_);
  std::size_t open = 0;
  for (const auto& [shape, breaker] : breakers_) {
    if (breaker.state != BreakerState::kClosed) ++open;
  }
  return open;
}

std::uint64_t BreakerBoard::opened_events() const {
  std::lock_guard lock(mu_);
  return opened_events_;
}

}  // namespace parma::serve

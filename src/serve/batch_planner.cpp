#include "serve/batch_planner.hpp"

#include <sstream>

namespace parma::serve {

BatchKey batch_key(const mea::DeviceSpec& spec, const core::StrategyOptions& options) {
  BatchKey key;
  key.rows = spec.rows;
  key.cols = spec.cols;
  key.backend = core::backend_for(options);
  key.workers = core::effective_workers(options);
  return key;
}

std::string describe(const BatchKey& key) {
  std::ostringstream os;
  os << key.rows << "x" << key.cols << "/" << exec::backend_name(key.backend)
     << " x" << key.workers;
  return os.str();
}

}  // namespace parma::serve

#include "serve/resilience.hpp"

#include <sstream>

#include "core/strategy.hpp"

namespace parma::serve {

void ResiliencePolicy::validate() const {
  const auto fail = [](const char* what, auto got) {
    std::ostringstream os;
    os << "invalid ResiliencePolicy: " << what << ", got " << got;
    throw core::InvalidOptions(os.str());
  };
  if (retry.max_attempts < 1) fail("retry.max_attempts must be >= 1", retry.max_attempts);
  if (retry.backoff.count() < 0) fail("retry.backoff must be >= 0 ms", retry.backoff.count());
  if (retry.backoff_cap < retry.backoff) {
    fail("retry.backoff_cap must be >= retry.backoff", retry.backoff_cap.count());
  }
  if (breaker.failure_threshold < 0) {
    fail("breaker.failure_threshold must be >= 0", breaker.failure_threshold);
  }
  if (breaker.cooldown.count() < 0) {
    fail("breaker.cooldown must be >= 0 ms", breaker.cooldown.count());
  }
  if (shedding.high_water < 0.0 || shedding.high_water > 1.0) {
    fail("shedding.high_water must be in [0, 1]", shedding.high_water);
  }
  if (shedding.sustain.count() < 0) {
    fail("shedding.sustain must be >= 0 ms", shedding.sustain.count());
  }
  if (default_deadline && default_deadline->count() <= 0) {
    fail("default_deadline must be > 0 ms", default_deadline->count());
  }
}

}  // namespace parma::serve

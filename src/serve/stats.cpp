#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace parma::serve {

namespace {

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Bucket b's upper boundary in seconds ([2^b, 2^(b+1)) microseconds).
Real bucket_upper_seconds(std::size_t bucket) {
  return std::ldexp(1e-6, static_cast<int>(bucket) + 1);
}

/// Bucket-boundary quantile estimate over raw counts, clamped by the exact
/// observed maximum (shared by live snapshots and merged snapshots, so the
/// cluster-wide estimate is the single-server estimate over the union).
Real quantile_from(Real q, std::uint64_t total,
                   const std::array<std::uint64_t, StageStats::kBuckets>& counts,
                   Real max_seconds) {
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<Real>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < StageStats::kBuckets; ++b) {
    cumulative += counts[b];
    if (cumulative >= target) {
      // Upper bucket boundary, clamped by the exact observed maximum.
      return std::min(bucket_upper_seconds(b), max_seconds);
    }
  }
  return max_seconds;
}

}  // namespace

void StageStats::recompute() {
  count = 0;
  for (const std::uint64_t c : buckets) count += c;
  if (count == 0) {
    mean_seconds = p50_seconds = p99_seconds = max_seconds = 0.0;
    return;
  }
  mean_seconds = static_cast<Real>(total_nanos) * 1e-9 / static_cast<Real>(count);
  max_seconds = static_cast<Real>(max_nanos) * 1e-9;
  p50_seconds = quantile_from(0.50, count, buckets, max_seconds);
  p99_seconds = quantile_from(0.99, count, buckets, max_seconds);
}

void StageStats::merge(const StageStats& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  total_nanos += other.total_nanos;
  max_nanos = std::max(max_nanos, other.max_nanos);
  recompute();
}

std::size_t LatencyHistogram::bucket_for(Real seconds) {
  if (!(seconds > 0.0)) return 0;
  Real us = seconds * 1e6;
  std::size_t bucket = 0;
  while (us >= 2.0 && bucket + 1 < kBuckets) {
    us *= 0.5;
    ++bucket;
  }
  return bucket;
}

void LatencyHistogram::record(Real seconds) {
  if (seconds < 0.0) seconds = 0.0;
  counts_[bucket_for(seconds)].fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
  atomic_max(max_nanos_, static_cast<std::uint64_t>(seconds * 1e9));
}

StageStats LatencyHistogram::snapshot() const {
  StageStats s;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = counts_[b].load(std::memory_order_relaxed);
  }
  s.total_nanos = total_nanos_.load(std::memory_order_relaxed);
  s.max_nanos = max_nanos_.load(std::memory_order_relaxed);
  s.recompute();
  return s;
}

void Stats::merge(const Stats& other) {
  submitted += other.submitted;
  accepted += other.accepted;
  rejected_queue_full += other.rejected_queue_full;
  rejected_shutting_down += other.rejected_shutting_down;
  rejected_invalid += other.rejected_invalid;
  rejected_load_shed += other.rejected_load_shed;
  completed_ok += other.completed_ok;
  deadline_exceeded += other.deadline_exceeded;
  cancelled += other.cancelled;
  solver_failed += other.solver_failed;
  invalid_input += other.invalid_input;
  breaker_open += other.breaker_open;
  degraded_results += other.degraded_results;
  retries += other.retries;
  retry_successes += other.retry_successes;
  breaker_opened_events += other.breaker_opened_events;
  degraded_entered += other.degraded_entered;
  solver_not_converged += other.solver_not_converged;
  solver_iterations += other.solver_iterations;
  cg_iterations += other.cg_iterations;
  fallback_tikhonov += other.fallback_tikhonov;
  fallback_dense += other.fallback_dense;
  masked_entries += other.masked_entries;
  auto_masked_entries += other.auto_masked_entries;
  outliers_downweighted += other.outliers_downweighted;
  numerical_breakdowns += other.numerical_breakdowns;
  breaker_open_shapes += other.breaker_open_shapes;
  degraded = degraded || other.degraded;
  symbolic_cache_hits += other.symbolic_cache_hits;
  symbolic_cache_misses += other.symbolic_cache_misses;
  batches += other.batches;
  batched_requests += other.batched_requests;
  max_batch = std::max(max_batch, other.max_batch);
  mean_batch_size = (batches > 0)
      ? static_cast<Real>(batched_requests) / static_cast<Real>(batches)
      : 0.0;
  queue_high_water = std::max(queue_high_water, other.queue_high_water);
  queue_wait.merge(other.queue_wait);
  form.merge(other.form);
  solve.merge(other.solve);
  reconstruct.merge(other.reconstruct);
  end_to_end.merge(other.end_to_end);
}

void StatsCollector::on_solve(Index iterations, bool converged, Index tikhonov_retries,
                              Index dense_fallbacks, Index cg_iterations) {
  solver_iterations_.fetch_add(static_cast<std::uint64_t>(iterations),
                               std::memory_order_relaxed);
  if (cg_iterations > 0) {
    cg_iterations_.fetch_add(static_cast<std::uint64_t>(cg_iterations),
                             std::memory_order_relaxed);
  }
  if (!converged) solver_not_converged_.fetch_add(1, std::memory_order_relaxed);
  if (tikhonov_retries > 0) {
    fallback_tikhonov_.fetch_add(static_cast<std::uint64_t>(tikhonov_retries),
                                 std::memory_order_relaxed);
  }
  if (dense_fallbacks > 0) {
    fallback_dense_.fetch_add(static_cast<std::uint64_t>(dense_fallbacks),
                              std::memory_order_relaxed);
  }
}

void StatsCollector::on_quality(Index masked_entries, Index auto_masked, Index outliers,
                                bool numerical_breakdown) {
  if (masked_entries > 0) {
    masked_entries_.fetch_add(static_cast<std::uint64_t>(masked_entries),
                              std::memory_order_relaxed);
  }
  if (auto_masked > 0) {
    auto_masked_entries_.fetch_add(static_cast<std::uint64_t>(auto_masked),
                                   std::memory_order_relaxed);
  }
  if (outliers > 0) {
    outliers_downweighted_.fetch_add(static_cast<std::uint64_t>(outliers),
                                     std::memory_order_relaxed);
  }
  if (numerical_breakdown) numerical_breakdowns_.fetch_add(1, std::memory_order_relaxed);
}

void StatsCollector::on_batch(std::size_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
  atomic_max(max_batch_, size);
}

Stats StatsCollector::snapshot(std::size_t queue_high_water,
                               std::uint64_t breaker_opened_events) const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_shutting_down = rejected_shutting_down_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_load_shed = rejected_load_shed_.load(std::memory_order_relaxed);
  s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.solver_failed = solver_failed_.load(std::memory_order_relaxed);
  s.invalid_input = invalid_input_.load(std::memory_order_relaxed);
  s.breaker_open = breaker_open_.load(std::memory_order_relaxed);
  s.degraded_results = degraded_results_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.retry_successes = retry_successes_.load(std::memory_order_relaxed);
  s.breaker_opened_events = breaker_opened_events;
  s.degraded_entered = degraded_entered_.load(std::memory_order_relaxed);
  s.solver_not_converged = solver_not_converged_.load(std::memory_order_relaxed);
  s.solver_iterations = solver_iterations_.load(std::memory_order_relaxed);
  s.cg_iterations = cg_iterations_.load(std::memory_order_relaxed);
  s.fallback_tikhonov = fallback_tikhonov_.load(std::memory_order_relaxed);
  s.fallback_dense = fallback_dense_.load(std::memory_order_relaxed);
  s.masked_entries = masked_entries_.load(std::memory_order_relaxed);
  s.auto_masked_entries = auto_masked_entries_.load(std::memory_order_relaxed);
  s.outliers_downweighted = outliers_downweighted_.load(std::memory_order_relaxed);
  s.numerical_breakdowns = numerical_breakdowns_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.mean_batch_size = (s.batches > 0)
      ? static_cast<Real>(s.batched_requests) / static_cast<Real>(s.batches)
      : 0.0;
  s.queue_high_water = queue_high_water;
  s.queue_wait = queue_wait.snapshot();
  s.form = form.snapshot();
  s.solve = solve.snapshot();
  s.reconstruct = reconstruct.snapshot();
  s.end_to_end = end_to_end.snapshot();
  return s;
}

}  // namespace parma::serve

// parma::serve::Server -- the batched, backpressured parametrization service.
//
//   serve::ServerOptions opts;
//   opts.workers = 4;                       // pipeline scheduler threads
//   opts.queue_capacity = 64;               // bounded admission queue
//   opts.policy.retry.max_attempts = 3;     // composed resilience policy
//   serve::Server server(opts);
//   serve::Ticket t = server.try_submit({measurement, strategy_options});
//   if (t.admission() == serve::SubmitStatus::kQueueFull) { /* backpressure */ }
//   serve::ParametrizeResult r = t.future().get();
//   server.drain();      // stop admission, finish everything queued
//   server.shutdown();   // then stop and join the pipeline
//
// Requests flow through a staged pipeline -- admit -> form -> solve ->
// reconstruct -- assembled as a continuation chain (src/async) rather than a
// blocking per-worker loop. A single dispatcher thread pops shape-keyed
// batches (see batch_planner.hpp) from the bounded admission queue and
// spawns each as a composed async::Task into an async::AsyncScope; the
// stages hop between `workers` scheduler threads, so batch B's formation
// runs while batch A solves, and retry backoffs park on a timer queue
// instead of occupying a thread. The dispatcher holds at most
// max_inflight_batches chains in flight, which preserves the queue-depth
// backpressure semantics (degraded mode, queue high-water, deadline while
// queued). Every admitted request completes exactly once via its
// std::future, with a per-request status; a failed or expired request never
// takes down the server or poisons the rest of its batch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "async/async_scope.hpp"
#include "async/scheduler.hpp"
#include "async/task.hpp"
#include "async/timer_queue.hpp"
#include "core/formation_cache.hpp"
#include "exec/executor.hpp"
#include "serve/batch_planner.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/request.hpp"
#include "serve/resilience.hpp"
#include "serve/stats.hpp"

namespace parma::serve {

// The pragma pair silences -Wdeprecated-declarations only for ServerOptions'
// own implicitly generated members (copy/move touch the deprecated fields);
// user code reading or writing those fields still warns at its own line.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct ServerOptions {
  // A user-declared (defaulted) constructor keeps ServerOptions{} from being
  // aggregate-initialized at the call site, where GCC would re-instantiate the
  // deprecated members' default initializers and warn on every value-init.
  ServerOptions() = default;

  /// Capacity of the bounded admission queue (the backpressure knob).
  std::size_t queue_capacity = 64;
  /// Pipeline scheduler threads running form/solve/reconstruct stages.
  Index workers = 2;
  /// Max requests per batch; 1 disables batching (the naive
  /// one-session-per-request baseline the throughput bench compares against).
  std::size_t max_batch = 8;
  /// Lease warm executors from a shared pool (one per in-flight batch);
  /// false constructs a fresh executor per request (naive baseline).
  bool warm_executors = true;
  /// Share one FormationCache across all requests (topology/layout computed
  /// once per device shape); false gives every request a cold cache.
  bool share_cache = true;
  /// Construct stopped; call start() explicitly. Lets tests and benches
  /// stage a full queue deterministically before any worker runs.
  bool deferred_start = false;
  /// Batch chains the dispatcher keeps in flight at once (pipelining depth).
  /// 0 = auto: workers + 1, so one extra batch can form while the others
  /// solve. Larger values drain the queue more aggressively (weakening
  /// queue-depth backpressure); 1 serializes batches end to end.
  Index max_inflight_batches = 0;

  /// Composed resilience policy: retry/backoff, per-shape circuit breaker,
  /// degraded-mode load shedding, default deadline. See resilience.hpp.
  ResiliencePolicy policy;

  // --- Deprecated loose resilience fields (one release of compatibility) ---
  //
  // These forward into `policy`: a field changed from its default overrides
  // the corresponding policy value (see resilience()). New code sets
  // `policy.*` directly.

  /// \deprecated Use policy.retry.max_attempts.
  [[deprecated("use policy.retry.max_attempts")]]
  Index max_attempts = 3;
  /// \deprecated Use policy.retry.backoff.
  [[deprecated("use policy.retry.backoff")]]
  std::chrono::milliseconds retry_backoff{1};
  /// \deprecated Use policy.retry.backoff_cap.
  [[deprecated("use policy.retry.backoff_cap")]]
  std::chrono::milliseconds retry_backoff_cap{50};
  /// \deprecated Use policy.retry.jitter_seed.
  [[deprecated("use policy.retry.jitter_seed")]]
  std::uint64_t retry_jitter_seed = 0x7a17;
  /// \deprecated Use policy.breaker.failure_threshold.
  [[deprecated("use policy.breaker.failure_threshold")]]
  Index breaker_failure_threshold = 5;
  /// \deprecated Use policy.breaker.cooldown.
  [[deprecated("use policy.breaker.cooldown")]]
  std::chrono::milliseconds breaker_cooldown{250};
  /// \deprecated Use policy.shedding.high_water.
  [[deprecated("use policy.shedding.high_water")]]
  Real degraded_high_water = 0.75;
  /// \deprecated Use policy.shedding.sustain.
  [[deprecated("use policy.shedding.sustain")]]
  std::chrono::milliseconds degraded_sustain{50};

  /// The effective policy: `policy`, with every deprecated field that was
  /// changed from its default overriding the corresponding policy value.
  /// (A deprecated field set *to* its default is indistinguishable from an
  /// untouched one and does not override -- migrate to policy.*.)
  [[nodiscard]] ResiliencePolicy resilience() const;

  /// Throws core::InvalidOptions for out-of-range values (including the
  /// effective resilience policy).
  void validate() const;
};
#pragma GCC diagnostic pop

namespace detail {

/// Shared state of one admitted request; owned by the queue until the
/// dispatcher takes it, and by the Ticket for cancellation.
struct PendingRequest {
  ParametrizeRequest request;
  std::promise<ParametrizeResult> promise;
  /// Externally-transported requests (submit_external) complete through this
  /// callback instead of the promise; invoked exactly once, on a pipeline
  /// thread.
  std::function<void(ParametrizeResult&&)> on_complete;
  std::atomic<bool> cancelled{false};
  std::optional<Clock::time_point> deadline;
  Clock::time_point enqueued_at{};
  Real queue_seconds = 0.0;  ///< set at batch pickup
};

}  // namespace detail

/// Handle to one submission: the admission verdict, the result future
/// (always valid -- rejected submissions carry an already-completed future
/// with status kRejected), and best-effort cancellation.
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] SubmitStatus admission() const { return admission_; }
  [[nodiscard]] bool accepted() const { return admission_ == SubmitStatus::kAccepted; }

  /// The request's completion future. Valid exactly once per ticket.
  [[nodiscard]] std::future<ParametrizeResult>& future() { return future_; }

  /// Requests cancellation. Best-effort: a request already past its solve
  /// stage completes kOk; one still queued (or between stages) completes
  /// kCancelled. No-op on rejected tickets.
  void cancel();

 private:
  friend class Server;
  SubmitStatus admission_ = SubmitStatus::kShuttingDown;
  std::future<ParametrizeResult> future_;
  std::shared_ptr<detail::PendingRequest> pending_;
};

/// Handle to one externally-transported submission (submit_external): the
/// admission verdict plus best-effort cancellation. No future -- completion
/// arrives through the callback the transport supplied, so a dead client's
/// connection teardown can cancel everything it had in flight and the
/// dispatcher never blocks on a peer that stopped reading.
class ExternalTicket {
 public:
  ExternalTicket() = default;

  [[nodiscard]] SubmitStatus admission() const { return admission_; }
  [[nodiscard]] bool accepted() const { return admission_ == SubmitStatus::kAccepted; }

  /// Same semantics as Ticket::cancel(): a request still queued (or between
  /// stages) completes kCancelled; one past its solve completes kOk.
  void cancel();

 private:
  friend class Server;
  SubmitStatus admission_ = SubmitStatus::kShuttingDown;
  std::shared_ptr<detail::PendingRequest> pending_;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  // shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the stage scheduler and the batch dispatcher (no-op when already
  /// started; constructor calls this unless options.deferred_start).
  void start();

  /// Non-blocking admission: kQueueFull when the bounded queue is at
  /// capacity. The ticket's future is always valid.
  [[nodiscard]] Ticket try_submit(ParametrizeRequest request);

  /// Blocking admission: waits up to `timeout` for queue space, then gives
  /// up with kQueueFull.
  [[nodiscard]] Ticket submit(ParametrizeRequest request,
                              std::chrono::milliseconds timeout);

  /// Non-blocking admission for externally-transported (already decoded)
  /// frames: identical validation/shedding/queue path to try_submit, but the
  /// result is delivered by invoking `on_complete` exactly once instead of
  /// through a future. Accepted requests complete on a pipeline thread;
  /// rejections invoke the callback inline, before this returns, so the
  /// transport can answer backpressure (kQueueFull and friends) immediately
  /// without ever blocking its I/O loop. The callback must not block.
  [[nodiscard]] ExternalTicket submit_external(
      ParametrizeRequest request, std::function<void(ParametrizeResult&&)> on_complete);

  /// Stops admission (subsequent submissions come back kShuttingDown),
  /// expedites pending retry backoffs (a request sleeping toward its next
  /// attempt completes promptly instead of holding drain for the full
  /// backoff), and blocks until every already-accepted request has
  /// completed. Requests queued on a deferred-start server that was never
  /// started complete kCancelled. Idempotent.
  void drain();

  /// drain(), then joins the dispatcher, the in-flight chains (a single
  /// async_scope::join -- pending breaker half-open probes resolve before
  /// anything is torn down), and finally the timers and the scheduler.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Live snapshot; safe to call while the server is running.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] const std::shared_ptr<core::FormationCache>& cache() const {
    return cache_;
  }

  /// Degraded mode active right now (low-priority submissions are shed).
  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// Breaker state of one device shape (tests/diagnostics).
  [[nodiscard]] BreakerState breaker_state(Index rows, Index cols) const {
    return breakers_.state({rows, cols});
  }

  /// Batch chains currently in flight (tests/diagnostics).
  [[nodiscard]] std::size_t inflight_batches() const;
  /// Per-stage chain latencies measured by the instrument adaptors (stage
  /// task including its scheduler hop; the Stats histograms keep their
  /// historical pure-stage semantics).
  [[nodiscard]] StageStats chain_stage_latency(const char* stage) const;

 private:
  using PendingPtr = std::shared_ptr<detail::PendingRequest>;

  /// How one pipeline attempt failed (drives the retry decision).
  enum class AttemptFailure {
    kNone,          ///< attempt produced a terminal result (ok/deadline/cancel)
    kRetryable,     ///< transient: injected fault, numerics, alloc, corruption
    kInvalidInput,  ///< measurement payload rejected (retryable: the original
                    ///< passed admission, so corruption happened in flight)
    kFatal,         ///< contract/config error; retrying cannot help
  };

  /// Outcome of one retried attempt chain: the result plus its failure class.
  struct AttemptOutcome;
  using OutcomePtr = std::shared_ptr<AttemptOutcome>;
  /// Per-batch shared context (requests, executor lease, runnable flags).
  struct BatchContext;
  using BatchPtr = std::shared_ptr<BatchContext>;
  /// Per-attempt shared context threaded through the stage tasks.
  struct AttemptState;
  using StatePtr = std::shared_ptr<AttemptState>;

  Ticket admit(ParametrizeRequest&& request, bool blocking,
               std::chrono::milliseconds timeout,
               std::function<void(ParametrizeResult&&)> on_complete = nullptr);
  /// Degraded-mode bookkeeping at admission; true when a kLow-priority
  /// request must be shed right now.
  bool should_shed(Priority priority);
  /// The dispatcher: pops batches, holds the in-flight window, spawns chains.
  void dispatcher_loop();
  void acquire_batch_slot();
  void release_batch_slot();
  /// Composes and spawns the chain of one popped batch.
  void spawn_batch(std::vector<PendingPtr> batch);
  /// Admit-stage exit checks of one batch: queue-wait accounting, cancelled/
  /// expired sweep, executor lease acquisition.
  void batch_admit(const BatchPtr& ctx);
  /// Runs a stage body under the historical exception -> status ladder.
  void run_guarded(const StatePtr& state, const std::function<void()>& body);
  /// The composed per-request chain: breaker admission around the retried
  /// attempt chain, then breaker feedback + completion.
  [[nodiscard]] async::Task<async::Unit> make_request_task(PendingPtr pending,
                                                           BatchPtr batch);
  /// One pipeline attempt: prep -> form -> solve -> reconstruct stage tasks
  /// with cancellation/deadline gates and instrument adaptors attached. All
  /// attempts of one request share `cache` (the server-wide cache when
  /// share_cache is on, a per-request one otherwise).
  [[nodiscard]] async::Task<OutcomePtr> make_attempt_task(
      PendingPtr pending, BatchPtr batch,
      std::shared_ptr<core::FormationCache> cache, int attempt);
  // Stage bodies (verbatim slices of the historical single-pass pipeline;
  // each wraps its work in the same exception->status ladder).
  void stage_prep(const StatePtr& state);
  void stage_form(const StatePtr& state);
  void stage_solve(const StatePtr& state);
  void stage_reconstruct(const StatePtr& state);
  /// Deterministically jittered exponential backoff before attempt + 1.
  [[nodiscard]] std::chrono::microseconds backoff_delay(Index attempt);
  /// Completes the promise, records end-to-end latency + status counters,
  /// and releases the drain waiter when this was the last outstanding
  /// request.
  void complete(const PendingPtr& pending, ParametrizeResult&& result);

  ServerOptions options_;
  ResiliencePolicy policy_;  ///< effective policy (deprecated fields merged)
  std::shared_ptr<core::FormationCache> cache_;
  BoundedQueue<PendingPtr> queue_;
  StatsCollector stats_;
  BreakerBoard breakers_;
  exec::ExecutorPool executors_;

  // Continuation-core runtime: stage scheduler, backoff timers, and the
  // scope owning every in-flight chain (drain/shutdown = one join).
  std::unique_ptr<async::Scheduler> scheduler_;
  async::TimerQueue timers_;
  async::AsyncScope scope_;
  std::thread dispatcher_;

  // Chain-level per-stage latency (instrument adaptor sinks).
  LatencyHistogram chain_form_;
  LatencyHistogram chain_solve_;
  LatencyHistogram chain_reconstruct_;

  // Degraded-mode state: sampled at admission under state_mu_; the flag is
  // atomic so stats()/degraded() read it without the lock.
  std::atomic<bool> degraded_{false};
  std::optional<Clock::time_point> queue_hot_since_;
  std::atomic<std::uint64_t> retry_sequence_{0};

  mutable std::mutex state_mu_;
  std::condition_variable all_done_;
  std::condition_variable slot_free_;
  std::size_t inflight_batches_ = 0;
  std::size_t max_inflight_ = 1;
  std::int64_t outstanding_ = 0;  ///< accepted but not yet completed
  bool accepting_ = true;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace parma::serve

// parma::serve::Server -- the batched, backpressured parametrization service.
//
//   serve::ServerOptions opts;
//   opts.workers = 4;                       // pipeline worker threads
//   opts.queue_capacity = 64;               // bounded admission queue
//   serve::Server server(opts);
//   serve::Ticket t = server.try_submit({measurement, strategy_options});
//   if (t.admission() == serve::SubmitStatus::kQueueFull) { /* backpressure */ }
//   serve::ParametrizeResult r = t.future().get();
//   server.drain();      // stop admission, finish everything queued
//   server.shutdown();   // then stop and join the workers
//
// Requests flow through a staged pipeline -- admit -> form -> solve ->
// reconstruct -- run by a configurable pool of pipeline workers. The admit
// stage is the bounded queue: try_submit never blocks (kQueueFull is the
// backpressure signal), submit blocks for space up to a timeout. Workers
// dequeue *batches* keyed by device shape (see batch_planner.hpp), so every
// request in a batch reuses one warmed exec::Executor and one FormationCache
// entry instead of paying thread-pool construction and topology analysis per
// request. Every admitted request completes exactly once via its
// std::future, with a per-request status; a failed or expired request never
// takes down the server or poisons the rest of its batch.
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/formation_cache.hpp"
#include "serve/batch_planner.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"

namespace parma::serve {

struct ServerOptions {
  /// Capacity of the bounded admission queue (the backpressure knob).
  std::size_t queue_capacity = 64;
  /// Pipeline worker threads running form/solve/reconstruct.
  Index workers = 2;
  /// Max requests per batch; 1 disables batching (the naive
  /// one-session-per-request baseline the throughput bench compares against).
  std::size_t max_batch = 8;
  /// Keep one executor per (backend, workers) warm on each pipeline worker;
  /// false constructs a fresh executor per request (naive baseline).
  bool warm_executors = true;
  /// Share one FormationCache across all requests (topology/layout computed
  /// once per device shape); false gives every request a cold cache.
  bool share_cache = true;
  /// Construct stopped; call start() explicitly. Lets tests and benches
  /// stage a full queue deterministically before any worker runs.
  bool deferred_start = false;

  // --- Resilience (see DESIGN.md section 8) ---

  /// Pipeline attempts per request (1 = no retry). Retries cover transient
  /// failures -- injected faults, numerical blow-ups, allocation failure,
  /// in-flight measurement corruption -- with exponential backoff + jitter;
  /// they never override the request's deadline.
  Index max_attempts = 3;
  /// Backoff before attempt k+1 is retry_backoff * 2^(k-1), capped at
  /// retry_backoff_cap, scaled by a deterministic jitter in [0.5, 1].
  std::chrono::milliseconds retry_backoff{1};
  std::chrono::milliseconds retry_backoff_cap{50};
  /// Seed of the jitter stream (deterministic given submission order).
  std::uint64_t retry_jitter_seed = 0x7a17;

  /// Per-shape circuit breaker: consecutive kSolverFailed completions of a
  /// shape that open it (0 disables). See circuit_breaker.hpp.
  Index breaker_failure_threshold = 5;
  std::chrono::milliseconds breaker_cooldown{250};

  /// Degraded mode: when the queue sits at or above this fill fraction for
  /// `degraded_sustain`, the server sheds Priority::kLow submissions at
  /// admission (SubmitStatus::kLoadShed) until the queue falls below half
  /// the threshold. 0 disables shedding.
  Real degraded_high_water = 0.75;
  std::chrono::milliseconds degraded_sustain{50};

  /// Throws core::InvalidOptions for out-of-range values.
  void validate() const;
};

namespace detail {

/// Shared state of one admitted request; owned by the queue until a worker
/// takes it, and by the Ticket for cancellation.
struct PendingRequest {
  ParametrizeRequest request;
  std::promise<ParametrizeResult> promise;
  std::atomic<bool> cancelled{false};
  std::optional<Clock::time_point> deadline;
  Clock::time_point enqueued_at{};
  Real queue_seconds = 0.0;  ///< set by the worker at batch pickup
};

}  // namespace detail

/// Handle to one submission: the admission verdict, the result future
/// (always valid -- rejected submissions carry an already-completed future
/// with status kRejected), and best-effort cancellation.
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] SubmitStatus admission() const { return admission_; }
  [[nodiscard]] bool accepted() const { return admission_ == SubmitStatus::kAccepted; }

  /// The request's completion future. Valid exactly once per ticket.
  [[nodiscard]] std::future<ParametrizeResult>& future() { return future_; }

  /// Requests cancellation. Best-effort: a request already past its solve
  /// stage completes kOk; one still queued (or between stages) completes
  /// kCancelled. No-op on rejected tickets.
  void cancel();

 private:
  friend class Server;
  SubmitStatus admission_ = SubmitStatus::kShuttingDown;
  std::future<ParametrizeResult> future_;
  std::shared_ptr<detail::PendingRequest> pending_;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  // shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the pipeline workers (no-op when already started; constructor
  /// calls this unless options.deferred_start).
  void start();

  /// Non-blocking admission: kQueueFull when the bounded queue is at
  /// capacity. The ticket's future is always valid.
  [[nodiscard]] Ticket try_submit(ParametrizeRequest request);

  /// Blocking admission: waits up to `timeout` for queue space, then gives
  /// up with kQueueFull.
  [[nodiscard]] Ticket submit(ParametrizeRequest request,
                              std::chrono::milliseconds timeout);

  /// Stops admission (subsequent submissions come back kShuttingDown) and
  /// blocks until every already-accepted request has completed. Requests
  /// queued on a deferred-start server that was never started complete
  /// kCancelled. Idempotent.
  void drain();

  /// drain(), then stops and joins the pipeline workers. Idempotent; called
  /// by the destructor.
  void shutdown();

  /// Live snapshot; safe to call while the server is running.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] const std::shared_ptr<core::FormationCache>& cache() const {
    return cache_;
  }

  /// Degraded mode active right now (low-priority submissions are shed).
  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// Breaker state of one device shape (tests/diagnostics).
  [[nodiscard]] BreakerState breaker_state(Index rows, Index cols) const {
    return breakers_.state({rows, cols});
  }

 private:
  using PendingPtr = std::shared_ptr<detail::PendingRequest>;

  /// How one pipeline attempt failed (drives the retry decision).
  enum class AttemptFailure {
    kNone,          ///< attempt produced a terminal result (ok/deadline/cancel)
    kRetryable,     ///< transient: injected fault, numerics, alloc, corruption
    kInvalidInput,  ///< measurement payload rejected (retryable: the original
                    ///< passed admission, so corruption happened in flight)
    kFatal,         ///< contract/config error; retrying cannot help
  };

  Ticket admit(ParametrizeRequest&& request, bool blocking,
               std::chrono::milliseconds timeout);
  /// Degraded-mode bookkeeping at admission; true when a kLow-priority
  /// request must be shed right now.
  bool should_shed(Priority priority);
  void worker_loop();
  void process_batch(std::vector<PendingPtr>& batch, exec::ExecutorCache& warm);
  /// Runs the retry/breaker loop around run_attempt and completes the
  /// request exactly once.
  void serve_one(const PendingPtr& pending, exec::Executor* executor,
                 const std::shared_ptr<core::FormationCache>& cache,
                 Index batch_size);
  /// One pipeline pass (form -> solve -> reconstruct) over a fresh copy of
  /// the measurement. Never throws: failures come back via `failure` with
  /// the status/message already set on the result.
  ParametrizeResult run_attempt(const PendingPtr& pending, exec::Executor* executor,
                                const std::shared_ptr<core::FormationCache>& cache,
                                Index batch_size, AttemptFailure& failure);
  /// Deterministically jittered exponential backoff before attempt + 1.
  [[nodiscard]] std::chrono::microseconds backoff_delay(Index attempt);
  /// Completes the promise, records end-to-end latency + status counters,
  /// and releases the drain waiter when this was the last outstanding
  /// request.
  void complete(const PendingPtr& pending, ParametrizeResult&& result);

  ServerOptions options_;
  std::shared_ptr<core::FormationCache> cache_;
  BoundedQueue<PendingPtr> queue_;
  StatsCollector stats_;
  BreakerBoard breakers_;

  // Degraded-mode state: sampled at admission under state_mu_; the flag is
  // atomic so stats()/degraded() read it without the lock.
  std::atomic<bool> degraded_{false};
  std::optional<Clock::time_point> queue_hot_since_;
  std::atomic<std::uint64_t> retry_sequence_{0};

  mutable std::mutex state_mu_;
  std::condition_variable all_done_;
  std::vector<std::thread> workers_;
  std::int64_t outstanding_ = 0;  ///< accepted but not yet completed
  bool accepting_ = true;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace parma::serve

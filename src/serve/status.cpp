#include "serve/status.hpp"

namespace parma::serve {

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDeadlineExceeded: return "deadline-exceeded";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kSolverFailed: return "solver-failed";
    case RequestStatus::kInvalidInput: return "invalid-input";
    case RequestStatus::kBreakerOpen: return "breaker-open";
    case RequestStatus::kDegradedResult: return "degraded-result";
  }
  return "?";
}

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidOptions: return "invalid-options";
    case SubmitStatus::kLoadShed: return "load-shed";
  }
  return "?";
}

std::string to_string(RequestStatus status) { return request_status_name(status); }

std::string to_string(SubmitStatus status) { return submit_status_name(status); }

std::uint16_t status_wire_code(RequestStatus status) {
  // Explicit codes, never enum ordering: the wire contract survives enum
  // reshuffles. 1xx block = terminal request statuses.
  switch (status) {
    case RequestStatus::kOk: return 100;
    case RequestStatus::kDeadlineExceeded: return 101;
    case RequestStatus::kCancelled: return 102;
    case RequestStatus::kRejected: return 103;
    case RequestStatus::kSolverFailed: return 104;
    case RequestStatus::kInvalidInput: return 105;
    case RequestStatus::kBreakerOpen: return 106;
    case RequestStatus::kDegradedResult: return 107;
  }
  return 0;
}

std::uint16_t status_wire_code(SubmitStatus status) {
  // 2xx block = admission verdicts.
  switch (status) {
    case SubmitStatus::kAccepted: return 200;
    case SubmitStatus::kQueueFull: return 201;
    case SubmitStatus::kShuttingDown: return 202;
    case SubmitStatus::kInvalidOptions: return 203;
    case SubmitStatus::kLoadShed: return 204;
  }
  return 0;
}

std::optional<RequestStatus> request_status_from_wire(std::uint16_t code) {
  switch (code) {
    case 100: return RequestStatus::kOk;
    case 101: return RequestStatus::kDeadlineExceeded;
    case 102: return RequestStatus::kCancelled;
    case 103: return RequestStatus::kRejected;
    case 104: return RequestStatus::kSolverFailed;
    case 105: return RequestStatus::kInvalidInput;
    case 106: return RequestStatus::kBreakerOpen;
    case 107: return RequestStatus::kDegradedResult;
    default: return std::nullopt;
  }
}

std::optional<SubmitStatus> submit_status_from_wire(std::uint16_t code) {
  switch (code) {
    case 200: return SubmitStatus::kAccepted;
    case 201: return SubmitStatus::kQueueFull;
    case 202: return SubmitStatus::kShuttingDown;
    case 203: return SubmitStatus::kInvalidOptions;
    case 204: return SubmitStatus::kLoadShed;
    default: return std::nullopt;
  }
}

}  // namespace parma::serve

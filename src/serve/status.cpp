#include "serve/status.hpp"

namespace parma::serve {

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDeadlineExceeded: return "deadline-exceeded";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kSolverFailed: return "solver-failed";
    case RequestStatus::kInvalidInput: return "invalid-input";
    case RequestStatus::kBreakerOpen: return "breaker-open";
    case RequestStatus::kDegradedResult: return "degraded-result";
  }
  return "?";
}

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidOptions: return "invalid-options";
    case SubmitStatus::kLoadShed: return "load-shed";
  }
  return "?";
}

std::string to_string(RequestStatus status) { return request_status_name(status); }

std::string to_string(SubmitStatus status) { return submit_status_name(status); }

}  // namespace parma::serve

// Serving statistics: lock-free counters plus per-stage latency histograms,
// snapshotable while the server runs.
//
// Latencies go into fixed log2-bucketed histograms (1 us granularity at the
// bottom, ~9 days at the top), so p50/p99 are deterministic bucket-boundary
// estimates with no per-request allocation and no lock on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace parma::serve {

/// Snapshot of one stage's latency distribution. Alongside the derived
/// summary (mean/p50/p99/max) the snapshot carries the raw histogram state
/// it was derived from, so two snapshots merge EXACTLY: bucket counts and
/// nanosecond totals add, maxima take the max, and the summary is recomputed
/// from the merged state -- a cluster-wide p99 is the same bucket-boundary
/// estimate one server observing all requests would have reported.
struct StageStats {
  /// Mirrors LatencyHistogram's bucket layout (log2 us buckets).
  static constexpr std::size_t kBuckets = 40;

  std::uint64_t count = 0;
  Real mean_seconds = 0.0;
  Real p50_seconds = 0.0;  ///< bucket-boundary estimate
  Real p99_seconds = 0.0;  ///< bucket-boundary estimate
  Real max_seconds = 0.0;  ///< exact

  // Raw histogram state (the merge substrate).
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t total_nanos = 0;
  std::uint64_t max_nanos = 0;

  /// Adds `other`'s raw state into this snapshot and recomputes the summary.
  void merge(const StageStats& other);
  /// Re-derives count/mean/p50/p99/max from the raw state.
  void recompute();
};

/// Snapshot of the whole server (Server::stats()).
struct Stats {
  // Admission counters.
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_load_shed = 0;  ///< degraded-mode fast rejects

  // Completion counters (one per admitted request, by terminal status).
  std::uint64_t completed_ok = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t solver_failed = 0;
  std::uint64_t invalid_input = 0;   ///< corrupt measurement survived retries
  std::uint64_t breaker_open = 0;    ///< fast-failed by an open breaker
  std::uint64_t degraded_results = 0;  ///< completions demoted by a QualityFloor

  // Resilience counters.
  std::uint64_t retries = 0;             ///< extra pipeline attempts
  std::uint64_t retry_successes = 0;     ///< kOk completions that needed > 1 attempt
  std::uint64_t breaker_opened_events = 0;  ///< closed/half-open -> open transitions
  std::uint64_t degraded_entered = 0;    ///< degraded-mode entries
  std::uint64_t solver_not_converged = 0;  ///< kOk completions with converged=false
  std::uint64_t solver_iterations = 0;   ///< total outer iterations over kOk solves
  std::uint64_t cg_iterations = 0;       ///< total CG iterations over kOk solves
  std::uint64_t fallback_tikhonov = 0;   ///< linear solves that needed rung 2
  std::uint64_t fallback_dense = 0;      ///< linear solves that needed rung 3

  // Input-quality counters (masking + robust estimation), over completions
  // that produced a result (kOk or kDegradedResult).
  std::uint64_t masked_entries = 0;        ///< Z entries excluded from fits
  std::uint64_t auto_masked_entries = 0;   ///< of those, auto-masked invalids
  std::uint64_t outliers_downweighted = 0; ///< entries IRLS pushed below w=1/2
  std::uint64_t numerical_breakdowns = 0;  ///< solves ending in breakdown

  // Live gauges (filled by Server::stats()).
  std::size_t breaker_open_shapes = 0;  ///< shapes currently open/half-open
  bool degraded = false;                ///< degraded mode active right now

  // Kernel symbolic-structure cache (full-system solves; one symbolic
  // analysis per device shape, from the shared FormationCache).
  std::uint64_t symbolic_cache_hits = 0;
  std::uint64_t symbolic_cache_misses = 0;

  // Batching.
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  ///< Σ batch sizes (merge substrate)
  std::uint64_t max_batch = 0;
  Real mean_batch_size = 0.0;  ///< batched_requests / batches

  /// Deepest the admission queue has ever been.
  std::size_t queue_high_water = 0;

  // Per-stage latency distributions.
  StageStats queue_wait;    ///< admission -> batch pickup
  StageStats form;          ///< equation formation
  StageStats solve;         ///< inverse recovery
  StageStats reconstruct;   ///< result assembly + anomaly thresholding
  StageStats end_to_end;    ///< admission -> completion

  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_queue_full + rejected_shutting_down + rejected_invalid +
           rejected_load_shed;
  }
  [[nodiscard]] std::uint64_t completed() const {
    return completed_ok + deadline_exceeded + cancelled + solver_failed +
           invalid_input + breaker_open + degraded_results;
  }

  /// Folds another server's snapshot into this one (cluster-wide view).
  /// Counters add exactly; histograms merge bucket-wise (see StageStats);
  /// mean_batch_size is re-derived from the summed batch totals; max_batch
  /// and queue_high_water take the max (they are per-process high-water
  /// marks, not flows); `degraded` ORs and breaker_open_shapes adds (shapes
  /// are per-worker breaker boards).
  void merge(const Stats& other);
};

/// Thread-safe latency histogram; record() is wait-free (relaxed atomics).
class LatencyHistogram {
 public:
  void record(Real seconds);
  [[nodiscard]] StageStats snapshot() const;

 private:
  /// Bucket b covers [2^b, 2^(b+1)) microseconds; b = 0 also absorbs sub-us.
  static constexpr std::size_t kBuckets = StageStats::kBuckets;
  [[nodiscard]] static std::size_t bucket_for(Real seconds);

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_nanos_{0};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// The server's live accumulator; every member is safe to bump from any
/// worker/submitter thread while stats() snapshots concurrently.
class StatsCollector {
 public:
  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_accepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_queue_full() { rejected_queue_full_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_shutting_down() { rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_invalid() { rejected_invalid_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_load_shed() { rejected_load_shed_.fetch_add(1, std::memory_order_relaxed); }
  void on_completed_ok() { completed_ok_.fetch_add(1, std::memory_order_relaxed); }
  void on_deadline_exceeded() { deadline_exceeded_.fetch_add(1, std::memory_order_relaxed); }
  void on_cancelled() { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void on_solver_failed() { solver_failed_.fetch_add(1, std::memory_order_relaxed); }
  void on_invalid_input() { invalid_input_.fetch_add(1, std::memory_order_relaxed); }
  void on_breaker_open() { breaker_open_.fetch_add(1, std::memory_order_relaxed); }
  void on_degraded_result() { degraded_results_.fetch_add(1, std::memory_order_relaxed); }
  void on_retry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void on_retry_success() { retry_successes_.fetch_add(1, std::memory_order_relaxed); }
  void on_degraded_entered() { degraded_entered_.fetch_add(1, std::memory_order_relaxed); }
  /// Solver outcome of a kOk completion: outer iterations, convergence, how
  /// far up the fallback ladder its linear solves went, and the total CG
  /// iterations those solves spent (the preconditioner-sensitive cost; a
  /// regressing preconditioner shows up here before it shows up in latency).
  void on_solve(Index iterations, bool converged, Index tikhonov_retries,
                Index dense_fallbacks, Index cg_iterations = 0);
  /// Quality outcome of a completion that produced a result (kOk or
  /// kDegradedResult): masking census, robust down-weighting, breakdowns.
  void on_quality(Index masked_entries, Index auto_masked, Index outliers,
                  bool numerical_breakdown);
  void on_batch(std::size_t size);

  LatencyHistogram queue_wait;
  LatencyHistogram form;
  LatencyHistogram solve;
  LatencyHistogram reconstruct;
  LatencyHistogram end_to_end;

  /// `breaker_opened_events` comes from the BreakerBoard (the breaker owns
  /// its transition count); the live gauges are filled by Server::stats().
  [[nodiscard]] Stats snapshot(std::size_t queue_high_water,
                               std::uint64_t breaker_opened_events = 0) const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_shutting_down_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> rejected_load_shed_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> solver_failed_{0};
  std::atomic<std::uint64_t> invalid_input_{0};
  std::atomic<std::uint64_t> breaker_open_{0};
  std::atomic<std::uint64_t> degraded_results_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retry_successes_{0};
  std::atomic<std::uint64_t> degraded_entered_{0};
  std::atomic<std::uint64_t> solver_not_converged_{0};
  std::atomic<std::uint64_t> solver_iterations_{0};
  std::atomic<std::uint64_t> cg_iterations_{0};
  std::atomic<std::uint64_t> fallback_tikhonov_{0};
  std::atomic<std::uint64_t> fallback_dense_{0};
  std::atomic<std::uint64_t> masked_entries_{0};
  std::atomic<std::uint64_t> auto_masked_entries_{0};
  std::atomic<std::uint64_t> outliers_downweighted_{0};
  std::atomic<std::uint64_t> numerical_breakdowns_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

}  // namespace parma::serve

// Terminal and admission status codes of the parametrization service.
//
// Deliberately standalone: a client that only needs to switch on an outcome
// (dashboards, log scrapers, the CLI's exit-code mapping) includes this
// header without dragging in the whole request/engine/solver stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace parma::serve {

/// Terminal status of one served request.
enum class RequestStatus {
  kOk,                ///< full pipeline ran; `inverse` holds the recovery
  kDeadlineExceeded,  ///< the request's deadline passed before completion
  kCancelled,         ///< cancelled via Ticket::cancel() (or server teardown)
  kRejected,          ///< never admitted (queue full, shutdown, bad options)
  kSolverFailed,      ///< a pipeline stage threw; `message` has the reason
  kInvalidInput,      ///< measurement payload rejected (non-finite/negative Z)
  kBreakerOpen,       ///< fast-failed: this shape's circuit breaker is open
  kDegradedResult,    ///< pipeline ran and `inverse` holds a recovery, but the
                      ///< quality report tripped the request's QualityFloor
                      ///< (heavy masking/outliers, ill-conditioning, breakdown)
};

const char* request_status_name(RequestStatus status);

/// Outcome of a submit/try_submit call (admission-time backpressure signal;
/// the request-level outcome is RequestStatus on the future).
enum class SubmitStatus {
  kAccepted,       ///< queued; the future completes when a worker finishes it
  kQueueFull,      ///< bounded admission queue is full (after the timeout,
                   ///< for the blocking submit); future completes kRejected
  kShuttingDown,   ///< drain()/shutdown() already stopped admission
  kInvalidOptions, ///< request failed admission validation
  kLoadShed,       ///< degraded mode fast-rejected this low-priority request
};

const char* submit_status_name(SubmitStatus status);

/// std::string conveniences over the *_name functions.
std::string to_string(RequestStatus status);
std::string to_string(SubmitStatus status);

// --- Wire codes -----------------------------------------------------------
//
// Stable numeric codes for transporting statuses between processes (the
// src/net binary protocol, log shippers, dashboards). The codes are part of
// the wire contract: they are assigned explicitly, never from enum ordering,
// so reordering or extending the enums cannot silently change what a remote
// peer decodes. New statuses get fresh codes; existing codes are never
// reused. Exhaustive-switch tests in test_serve enforce the round-trip.

/// Stable wire code of a terminal request status (1xx block).
[[nodiscard]] std::uint16_t status_wire_code(RequestStatus status);

/// Stable wire code of an admission verdict (2xx block).
[[nodiscard]] std::uint16_t status_wire_code(SubmitStatus status);

/// Inverse mapping; nullopt for codes this build does not know (a newer
/// peer's status degrades to "unknown", never to a misdecoded enum).
[[nodiscard]] std::optional<RequestStatus> request_status_from_wire(std::uint16_t code);
[[nodiscard]] std::optional<SubmitStatus> submit_status_from_wire(std::uint16_t code);

}  // namespace parma::serve

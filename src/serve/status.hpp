// Terminal and admission status codes of the parametrization service.
//
// Deliberately standalone: a client that only needs to switch on an outcome
// (dashboards, log scrapers, the CLI's exit-code mapping) includes this
// header without dragging in the whole request/engine/solver stack.
#pragma once

#include <string>

namespace parma::serve {

/// Terminal status of one served request.
enum class RequestStatus {
  kOk,                ///< full pipeline ran; `inverse` holds the recovery
  kDeadlineExceeded,  ///< the request's deadline passed before completion
  kCancelled,         ///< cancelled via Ticket::cancel() (or server teardown)
  kRejected,          ///< never admitted (queue full, shutdown, bad options)
  kSolverFailed,      ///< a pipeline stage threw; `message` has the reason
  kInvalidInput,      ///< measurement payload rejected (non-finite/negative Z)
  kBreakerOpen,       ///< fast-failed: this shape's circuit breaker is open
  kDegradedResult,    ///< pipeline ran and `inverse` holds a recovery, but the
                      ///< quality report tripped the request's QualityFloor
                      ///< (heavy masking/outliers, ill-conditioning, breakdown)
};

const char* request_status_name(RequestStatus status);

/// Outcome of a submit/try_submit call (admission-time backpressure signal;
/// the request-level outcome is RequestStatus on the future).
enum class SubmitStatus {
  kAccepted,       ///< queued; the future completes when a worker finishes it
  kQueueFull,      ///< bounded admission queue is full (after the timeout,
                   ///< for the blocking submit); future completes kRejected
  kShuttingDown,   ///< drain()/shutdown() already stopped admission
  kInvalidOptions, ///< request failed admission validation
  kLoadShed,       ///< degraded mode fast-rejected this low-priority request
};

const char* submit_status_name(SubmitStatus status);

/// std::string conveniences over the *_name functions.
std::string to_string(RequestStatus status);
std::string to_string(SubmitStatus status);

}  // namespace parma::serve

// Bounded, thread-safe admission queue with explicit backpressure and
// batch-aware dequeue.
//
// try_push never blocks (false = full, the kQueueFull signal); push blocks
// up to a timeout for space. pop_batch blocks for work and removes the front
// item plus up to max_batch-1 later items the caller's predicate accepts
// (FIFO order preserved) -- this is how the server groups same-shape
// requests into one batch. close() wakes every waiter; a closed queue
// rejects pushes and pop_batch returns empty once drained.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/require.hpp"

namespace parma::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    PARMA_REQUIRE(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Non-blocking push; false when the queue is full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      high_water_ = std::max(high_water_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push: waits up to `timeout` for space. False on timeout or
  /// when the queue is (or becomes) closed.
  bool push(T value, std::chrono::milliseconds timeout) {
    {
      std::unique_lock lock(mu_);
      if (!not_full_.wait_for(lock, timeout, [&] {
            return closed_ || items_.size() < capacity_;
          })) {
        return false;  // still full after the timeout
      }
      if (closed_) return false;
      items_.push_back(std::move(value));
      high_water_ = std::max(high_water_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and empty, in
  /// which case the result is empty). Returns the front item plus up to
  /// max_batch-1 further queued items for which batchable(front, candidate)
  /// is true, removed in FIFO order.
  std::vector<T> pop_batch(std::size_t max_batch,
                           const std::function<bool(const T&, const T&)>& batchable) {
    PARMA_REQUIRE(max_batch >= 1, "max_batch must be >= 1");
    std::vector<T> batch;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return batch;  // closed and drained
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
      for (auto it = items_.begin(); it != items_.end() && batch.size() < max_batch;) {
        if (batchable(batch.front(), *it)) {
          batch.push_back(std::move(*it));
          it = items_.erase(it);
        } else {
          ++it;
        }
      }
    }
    not_full_.notify_all();
    return batch;
  }

  /// Removes and returns everything currently queued (teardown path).
  std::vector<T> drain_now() {
    std::vector<T> all;
    {
      std::lock_guard lock(mu_);
      all.assign(std::make_move_iterator(items_.begin()),
                 std::make_move_iterator(items_.end()));
      items_.clear();
    }
    not_full_.notify_all();
    return all;
  }

  /// Rejects further pushes and wakes every waiter.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Deepest the queue has ever been (backpressure diagnostics).
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace parma::serve

// serve::ResiliencePolicy -- every knob that decides how the server behaves
// when the pipeline misbehaves, in one composable value.
//
// Historically these knobs were loose fields on ServerOptions
// (max_attempts, retry_backoff, breaker_failure_threshold, ...). They are
// one policy: retry classification feeds the breaker, the breaker gates the
// retried chain, shedding protects both. Grouping them lets callers build a
// policy once and reuse it across servers, and lets ServerOptions carry the
// old field names as deprecated forwarders for one release (see
// ServerOptions::resilience()).
//
//   serve::ResiliencePolicy policy;
//   policy.retry.max_attempts = 5;
//   policy.breaker.failure_threshold = 3;
//   policy.shedding.high_water = 0.9;
//   serve::ServerOptions opts;
//   opts.policy = policy;
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "serve/circuit_breaker.hpp"

namespace parma::serve {

/// Retry-with-backoff configuration of the pipeline attempt loop.
struct RetryPolicy {
  /// Pipeline attempts per request (1 = no retry). Retries cover transient
  /// failures -- injected faults, numerical blow-ups, allocation failure,
  /// in-flight measurement corruption -- and never override the deadline.
  Index max_attempts = 3;
  /// Backoff before attempt k+1 is backoff * 2^(k-1), capped at backoff_cap,
  /// scaled by a deterministic jitter in [0.5, 1].
  std::chrono::milliseconds backoff{1};
  std::chrono::milliseconds backoff_cap{50};
  /// Seed of the jitter stream (deterministic given submission order).
  std::uint64_t jitter_seed = 0x7a17;
};

/// Degraded-mode load shedding at admission.
struct SheddingPolicy {
  /// When the queue sits at or above this fill fraction for `sustain`, the
  /// server sheds Priority::kLow submissions (SubmitStatus::kLoadShed) until
  /// the queue falls below half the threshold. 0 disables shedding.
  Real high_water = 0.75;
  std::chrono::milliseconds sustain{50};
};

/// The composed policy: retry x breaker x shedding x default deadline.
struct ResiliencePolicy {
  RetryPolicy retry;
  /// Per-shape circuit breaker (failure_threshold 0 disables).
  BreakerOptions breaker;
  SheddingPolicy shedding;
  /// Deadline applied at admission to requests that set no timeout of their
  /// own. Unset (the default): such requests never expire.
  std::optional<std::chrono::milliseconds> default_deadline;

  /// Throws core::InvalidOptions for out-of-range values.
  void validate() const;
};

}  // namespace parma::serve

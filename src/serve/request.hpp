// parma::serve -- request/response types of the parametrization service.
//
// A ParametrizeRequest is one unit of serving work: a measurement sweep plus
// the strategy configuration to form it under, the inverse-solver options for
// the solve stage, and an optional deadline. The server completes every
// admitted request with a ParametrizeResult whose `status` says what
// happened; a failed or expired request never takes down the server.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "core/engine.hpp"
#include "core/strategy.hpp"
#include "mea/measurement.hpp"
#include "serve/status.hpp"
#include "solver/full_system_solver.hpp"
#include "solver/inverse_solver.hpp"

namespace parma::serve {

/// Monotonic clock used for deadlines and latency accounting.
using Clock = std::chrono::steady_clock;

// RequestStatus / SubmitStatus (and their *_name / to_string helpers) live in
// serve/status.hpp so status-only clients need not pull in the engine stack.

/// Scheduling weight under degraded mode: when the admission queue stays at
/// its high-water mark, kLow work is shed at admission (kLoadShed) so the
/// server keeps absorbing the traffic that matters.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

const char* priority_name(Priority priority);

/// Which solver runs the solve stage.
enum class SolveMethod {
  kLevenbergMarquardt,  ///< per-pair elimination LM (the fast production path)
  kFullSystem,          ///< Gauss-Newton + CG on the full joint-constraint
                        ///< system (paper IV-A); exercises the fallback ladder
};

/// Minimum acceptable quality of a served recovery. A request whose pipeline
/// succeeds but whose QualityReport violates any enabled bound completes as
/// kDegradedResult instead of kOk: the caller still gets the recovery, plus a
/// machine-readable signal that it came from dirty input or shaky numerics.
/// The defaults disable every bound (kOk behaves exactly as before).
struct QualityFloor {
  /// Max fraction of Z entries masked out (missing or auto-masked), in [0, 1].
  Real max_masked_fraction = 1.0;
  /// Max fraction of unmasked entries the robust loss down-weighted below 1/2.
  Real max_outlier_fraction = 1.0;
  /// Max acceptable diagonal condition estimate of the normal matrix
  /// (solver::diagonal_condition_estimate); 0 disables the bound.
  Real max_condition_estimate = 0.0;
  /// Demote non-converged (but otherwise successful) solves.
  bool require_convergence = false;
  /// Demote solves that terminated with kNumericalBreakdown but still
  /// produced a finite recovery.
  bool demote_on_breakdown = false;

  /// True when any bound is active (the server skips the check otherwise).
  [[nodiscard]] bool enabled() const {
    return max_masked_fraction < 1.0 || max_outlier_fraction < 1.0 ||
           max_condition_estimate > 0.0 || require_convergence || demote_on_breakdown;
  }
};

/// Input/solve quality of one completed request, for kOk and kDegradedResult.
struct QualityReport {
  Index masked_entries = 0;       ///< Z entries excluded from the fit (total)
  Index auto_masked = 0;          ///< of those, masked by auto_mask_invalid
  Real masked_fraction = 0.0;     ///< masked_entries / total entries
  Index outlier_entries = 0;      ///< unmasked entries down-weighted below 1/2
  Real outlier_fraction = 0.0;    ///< outlier_entries / unmasked entries
  Real robust_scale = 0.0;        ///< final IRLS scale (0 when robust off)
  Real condition_estimate = 0.0;  ///< worst per-iteration diagonal estimate
  bool numerical_breakdown = false;  ///< solver hit kNumericalBreakdown
  bool converged = false;
  bool degraded = false;          ///< this report tripped the QualityFloor
};

/// One unit of serving work.
struct ParametrizeRequest {
  mea::Measurement measurement;
  /// Formation configuration; validated once at admission. Serving runs on
  /// real threads, so timing_mode must stay kRealThreads.
  core::StrategyOptions options;
  /// Solve-stage configuration (validated by the solver inside the pipeline;
  /// a violation surfaces as kSolverFailed, not as an admission reject).
  solver::InverseOptions inverse;
  /// Solver selection; kFullSystem uses `full_system` instead of `inverse`
  /// and forces keep_system for its formation.
  SolveMethod solve_method = SolveMethod::kLevenbergMarquardt;
  /// Full-system solve configuration (used when solve_method == kFullSystem).
  solver::FullSystemOptions full_system;
  /// Relative deadline, converted to an absolute one at admission. A request
  /// whose deadline passes while queued or between stages completes with
  /// kDeadlineExceeded.
  std::optional<std::chrono::milliseconds> timeout;
  /// When set, the reconstruct stage also thresholds the recovered field at
  /// this resistance (kOhm) and reports the anomaly count.
  std::optional<Real> anomaly_threshold;
  /// Degraded-mode shedding class (see Priority).
  Priority priority = Priority::kNormal;
  /// When set, non-finite or non-positive Z entries are masked out (via
  /// mea::mask_invalid_entries) instead of rejecting the request as
  /// kInvalidInput -- the robust path for sweeps with dropped electrodes.
  /// Applied at admission and again per attempt (so injected faults are
  /// also recovered). A sweep whose every entry is invalid still rejects.
  bool auto_mask_invalid = false;
  /// Minimum acceptable result quality; violations complete the request as
  /// kDegradedResult (recovery still returned). Defaults: no bounds.
  QualityFloor quality_floor;
};

/// Completion record of one request.
struct ParametrizeResult {
  RequestStatus status = RequestStatus::kRejected;
  std::string message;             ///< failure detail for non-kOk statuses

  /// The recovery (valid when status == kOk). For solve_method ==
  /// kFullSystem the FullSystemResult is mapped onto these fields
  /// (recovered/iterations/converged; final_misfit is the residual RMS).
  solver::InverseResult inverse;
  /// Fallback-ladder usage of the solve that produced `inverse` (which rung
  /// each linear solve needed; see fallback.hpp).
  solver::SolveDiagnostics solve_diagnostics;
  /// Topology report of the device shape, memoized in the server's
  /// FormationCache across requests/batches (valid when kOk).
  core::TopologyReport topology;
  /// Anomalous cells above `anomaly_threshold` (when requested; kOk only).
  Index anomalies = 0;
  /// Input/solve quality of the attempt that produced `inverse` (valid for
  /// kOk and kDegradedResult).
  QualityReport quality;

  // Formation summary (the equation system itself is not returned).
  Index equations = 0;
  std::uint64_t equation_bytes = 0;

  // Per-stage wall-clock seconds and batch placement.
  Real queue_seconds = 0.0;   ///< admission to batch pickup
  Real form_seconds = 0.0;
  Real solve_seconds = 0.0;
  Real reconstruct_seconds = 0.0;
  Index batch_size = 0;       ///< size of the batch this request rode in
  /// Pipeline attempts this request took (1 = no retry). Stage timings above
  /// are from the final attempt.
  Index attempts = 0;

  [[nodiscard]] bool ok() const { return status == RequestStatus::kOk; }
  /// kOk or kDegradedResult: `inverse` holds a usable recovery either way.
  [[nodiscard]] bool has_result() const {
    return status == RequestStatus::kOk || status == RequestStatus::kDegradedResult;
  }
};

}  // namespace parma::serve

// Per-shape circuit breaker for the serving pipeline.
//
// Solver failures cluster by device shape: an ill-conditioned batch of
// 12x12 sweeps keeps being ill-conditioned, and every doomed solve burns a
// pipeline worker for a full solver timeout. The breaker turns that into a
// fast failure: after `failure_threshold` consecutive kSolverFailed
// completions of a shape, the shape's breaker OPENS and requests for it
// complete kBreakerOpen immediately (no solve). After `cooldown` the breaker
// goes HALF-OPEN and lets exactly one probe request through; a successful
// probe closes the breaker, a failed one re-opens it for another cooldown.
//
//          success               failure x threshold
//   CLOSED <------- HALF-OPEN <------------------ CLOSED
//      \               ^   \                        ^
//       failure x N    |    `- probe failed -> OPEN |
//        `-> OPEN -----'        (cooldown again)    |
//             (after cooldown, one probe)       success
//
// State is per BatchKey-shape, guarded by one mutex -- the breaker sits on
// the batch path (a handful of lookups per batch), not inside the solve.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/types.hpp"
#include "serve/request.hpp"

namespace parma::serve {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerOptions {
  /// Consecutive solver failures of one shape that open its breaker.
  /// 0 disables the breaker entirely (every allow() passes).
  Index failure_threshold = 5;
  /// How long an open breaker rejects before letting a half-open probe by.
  std::chrono::milliseconds cooldown{250};
};

/// One breaker state machine -- the closed -> open -> half-open ladder with
/// no locking and no identity; the owner serializes access and decides what
/// the breaker guards. serve::BreakerBoard keys one per device shape;
/// cluster::Router keys one per worker process (a crashing worker trips its
/// breaker exactly like an ill-conditioned shape trips a shape breaker).
struct Breaker {
  BreakerState state = BreakerState::kClosed;
  Index consecutive_failures = 0;
  Clock::time_point opened_at{};
  bool probe_in_flight = false;

  /// May a request run now? Open breakers reject until the cooldown
  /// elapses, then admit exactly one probe (half-open).
  [[nodiscard]] bool allow(const BreakerOptions& options, Clock::time_point now);
  /// Records a failure; returns true when this transition OPENED the
  /// breaker (for the owner's opened-events counter).
  bool on_failure(const BreakerOptions& options, Clock::time_point now);
  /// Fully healthy again: back to a fresh closed breaker.
  void on_success() { *this = Breaker{}; }
  /// Neutral outcome (deadline/cancel): releases a half-open probe slot
  /// without judging the guarded resource.
  void on_neutral();

 private:
  void open(Clock::time_point now);
};

/// The per-shape breaker board. All methods are thread-safe.
class BreakerBoard {
 public:
  explicit BreakerBoard(BreakerOptions options = {});

  /// Shape identity: requests batch by rows x cols (plus execution config,
  /// which does not affect solver health).
  struct Shape {
    Index rows = 0;
    Index cols = 0;
    bool operator<(const Shape& other) const {
      return rows != other.rows ? rows < other.rows : cols < other.cols;
    }
  };

  /// May a request for `shape` run now? Open breakers reject until the
  /// cooldown elapses, then admit exactly one probe (half-open).
  [[nodiscard]] bool allow(const Shape& shape, Clock::time_point now);

  /// Terminal-status feedback for a request that was allowed through.
  void on_success(const Shape& shape);
  void on_failure(const Shape& shape, Clock::time_point now);
  /// Neutral outcome (deadline/cancel): releases a half-open probe slot
  /// without judging the shape.
  void on_neutral(const Shape& shape);

  [[nodiscard]] BreakerState state(const Shape& shape) const;
  /// Shapes currently open or half-open (stats gauge).
  [[nodiscard]] std::size_t open_shapes() const;
  /// Closed->open and half-open->open transitions since construction.
  [[nodiscard]] std::uint64_t opened_events() const;

 private:
  BreakerOptions options_;
  mutable std::mutex mu_;
  std::map<Shape, Breaker> breakers_;
  std::uint64_t opened_events_ = 0;
};

}  // namespace parma::serve

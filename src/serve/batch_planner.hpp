// Batch planning: which queued requests may share one serving batch.
//
// A batch reuses one warmed exec::Executor and one FormationCache entry, so
// two requests are batchable iff they agree on the device shape (the cache
// key: topology and unknown layout depend only on rows x cols) and on the
// executor configuration their strategy resolves to (backend + effective
// worker count). Strategy chunk size and keep_system may differ within a
// batch -- they are per-submit_bulk parameters, not executor state.
#pragma once

#include <string>

#include "core/strategy.hpp"
#include "exec/executor.hpp"
#include "mea/device.hpp"
#include "serve/request.hpp"

namespace parma::serve {

struct BatchKey {
  Index rows = 0;
  Index cols = 0;
  exec::Backend backend = exec::Backend::kSerial;
  Index workers = 1;

  bool operator==(const BatchKey&) const = default;
};

/// The batch key a request serves under (resolves kAuto backends and the
/// category-strategy worker cap exactly as formation will).
[[nodiscard]] BatchKey batch_key(const mea::DeviceSpec& spec,
                                 const core::StrategyOptions& options);

[[nodiscard]] inline BatchKey batch_key(const ParametrizeRequest& request) {
  return batch_key(request.measurement.spec, request.options);
}

/// "8x8/pooled x4" -- for logs and the stats table.
[[nodiscard]] std::string describe(const BatchKey& key);

/// True when `candidate` may ride in a batch led by `front`.
[[nodiscard]] inline bool batchable(const ParametrizeRequest& front,
                                    const ParametrizeRequest& candidate) {
  return batch_key(front) == batch_key(candidate);
}

}  // namespace parma::serve

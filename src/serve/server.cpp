#include "serve/server.hpp"

#include <sstream>
#include <utility>

#include "common/stopwatch.hpp"
#include "core/engine.hpp"

namespace parma::serve {

namespace {

Real seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<Real>(to - from).count();
}

ParametrizeResult make_reject(std::string message) {
  ParametrizeResult r;
  r.status = RequestStatus::kRejected;
  r.message = std::move(message);
  return r;
}

}  // namespace

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDeadlineExceeded: return "deadline-exceeded";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kSolverFailed: return "solver-failed";
  }
  return "?";
}

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidOptions: return "invalid-options";
  }
  return "?";
}

void ServerOptions::validate() const {
  const auto fail = [](const char* what, auto got) {
    std::ostringstream os;
    os << "invalid ServerOptions: " << what << ", got " << got;
    throw core::InvalidOptions(os.str());
  };
  if (queue_capacity < 1) fail("queue_capacity must be >= 1", queue_capacity);
  if (workers < 1) fail("workers must be >= 1", workers);
  if (max_batch < 1) fail("max_batch must be >= 1", max_batch);
}

void Ticket::cancel() {
  if (pending_) pending_->cancelled.store(true, std::memory_order_relaxed);
}

Server::Server(ServerOptions options)
    : options_(options),
      cache_(std::make_shared<core::FormationCache>()),
      queue_(options.queue_capacity) {
  options_.validate();
  if (!options_.deferred_start) start();
}

Server::~Server() { shutdown(); }

void Server::start() {
  std::lock_guard lock(state_mu_);
  PARMA_REQUIRE(!shut_down_, "cannot start a server after shutdown");
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (Index w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Ticket Server::try_submit(ParametrizeRequest request) {
  return admit(std::move(request), /*blocking=*/false, std::chrono::milliseconds{0});
}

Ticket Server::submit(ParametrizeRequest request, std::chrono::milliseconds timeout) {
  return admit(std::move(request), /*blocking=*/true, timeout);
}

Ticket Server::admit(ParametrizeRequest&& request, bool blocking,
                     std::chrono::milliseconds timeout) {
  stats_.on_submitted();
  Ticket ticket;

  // Admission-time validation -- the single validation the request ever
  // gets; the pipeline hot path (Engine::form_equations overload) skips it.
  std::string invalid;
  try {
    request.options.validate();
    PARMA_REQUIRE(request.options.timing_mode == core::TimingMode::kRealThreads,
                  "serving runs on real threads; kVirtualReplay is not servable");
    request.measurement.spec.validate();
    PARMA_REQUIRE(request.measurement.z.rows() == request.measurement.spec.rows &&
                      request.measurement.z.cols() == request.measurement.spec.cols,
                  "measurement matrix does not match device");
  } catch (const std::exception& e) {
    invalid = e.what();
  }
  if (!invalid.empty()) {
    stats_.on_rejected_invalid();
    std::promise<ParametrizeResult> promise;
    ticket.future_ = promise.get_future();
    ticket.admission_ = SubmitStatus::kInvalidOptions;
    promise.set_value(make_reject(std::move(invalid)));
    return ticket;
  }

  auto pending = std::make_shared<detail::PendingRequest>();
  pending->request = std::move(request);
  pending->enqueued_at = Clock::now();
  if (pending->request.timeout) {
    pending->deadline = pending->enqueued_at + *pending->request.timeout;
  }
  ticket.future_ = pending->promise.get_future();

  {
    std::lock_guard lock(state_mu_);
    if (!accepting_ || shut_down_) {
      stats_.on_rejected_shutting_down();
      ticket.admission_ = SubmitStatus::kShuttingDown;
      pending->promise.set_value(make_reject("server is shutting down"));
      return ticket;
    }
    // Counted before the push so drain() cannot observe a zero-outstanding
    // instant between admission and enqueue.
    ++outstanding_;
  }

  const bool pushed =
      blocking ? queue_.push(pending, timeout) : queue_.try_push(pending);
  if (!pushed) {
    {
      std::lock_guard lock(state_mu_);
      --outstanding_;
      if (outstanding_ == 0) all_done_.notify_all();
    }
    const bool closed = queue_.closed();
    if (closed) {
      stats_.on_rejected_shutting_down();
    } else {
      stats_.on_rejected_queue_full();
    }
    ticket.admission_ = closed ? SubmitStatus::kShuttingDown : SubmitStatus::kQueueFull;
    pending->promise.set_value(
        make_reject(closed ? "server is shutting down" : "admission queue full"));
    return ticket;
  }

  stats_.on_accepted();
  ticket.admission_ = SubmitStatus::kAccepted;
  ticket.pending_ = std::move(pending);
  return ticket;
}

void Server::worker_loop() {
  exec::ExecutorCache warm;  // this worker's executors, reused across batches
  const auto can_batch = [](const PendingPtr& front, const PendingPtr& candidate) {
    return batchable(front->request, candidate->request);
  };
  for (;;) {
    std::vector<PendingPtr> batch = queue_.pop_batch(options_.max_batch, can_batch);
    if (batch.empty()) return;  // queue closed and drained
    process_batch(batch, warm);
  }
}

void Server::process_batch(std::vector<PendingPtr>& batch, exec::ExecutorCache& warm) {
  const auto batch_size = static_cast<Index>(batch.size());
  stats_.on_batch(batch.size());
  const Clock::time_point picked_up = Clock::now();

  // Admit-stage exit checks: cancelled or expired requests leave the batch
  // here, before any formation work.
  std::vector<PendingPtr> runnable;
  runnable.reserve(batch.size());
  for (PendingPtr& p : batch) {
    p->queue_seconds = seconds_between(p->enqueued_at, picked_up);
    stats_.queue_wait.record(p->queue_seconds);
    if (p->cancelled.load(std::memory_order_relaxed)) {
      ParametrizeResult r;
      r.status = RequestStatus::kCancelled;
      r.message = "cancelled while queued";
      r.queue_seconds = p->queue_seconds;
      complete(p, std::move(r));
      continue;
    }
    if (p->deadline && picked_up >= *p->deadline) {
      ParametrizeResult r;
      r.status = RequestStatus::kDeadlineExceeded;
      r.message = "deadline passed while queued";
      r.queue_seconds = p->queue_seconds;
      complete(p, std::move(r));
      continue;
    }
    runnable.push_back(std::move(p));
  }
  if (runnable.empty()) return;

  // One warmed executor serves the whole batch (the requests agreed on
  // backend + workers via the batch key). warm_executors = false is the
  // naive baseline: serve_one lets the engine build a fresh executor per
  // request.
  exec::Executor* executor = nullptr;
  if (options_.warm_executors) {
    const BatchKey key = batch_key(runnable.front()->request);
    executor = &warm.get(key.backend, key.workers);
  }
  for (const PendingPtr& p : runnable) {
    const std::shared_ptr<core::FormationCache> cache =
        options_.share_cache ? cache_ : std::make_shared<core::FormationCache>();
    serve_one(p, executor, cache, batch_size);
  }
}

void Server::serve_one(const PendingPtr& pending, exec::Executor* executor,
                       const std::shared_ptr<core::FormationCache>& cache,
                       Index batch_size) {
  ParametrizeResult result;
  result.batch_size = batch_size;
  result.queue_seconds = pending->queue_seconds;
  const auto expired = [&] {
    return pending->deadline && Clock::now() >= *pending->deadline;
  };
  const auto cancelled = [&] {
    return pending->cancelled.load(std::memory_order_relaxed);
  };
  // Any stage throwing completes this request alone -- the server and the
  // rest of the batch carry on.
  try {
    core::Engine engine(std::move(pending->request.measurement));

    // Stage: form.
    Stopwatch form_clock;
    const core::FormationResult formation =
        (executor != nullptr)
            ? engine.form_equations(pending->request.options, *executor)
            : engine.form_equations(pending->request.options);
    result.form_seconds = form_clock.elapsed_seconds();
    stats_.form.record(result.form_seconds);
    result.equations = engine.spec().num_equations();
    result.equation_bytes = formation.equation_bytes;
    if (cancelled()) {
      result.status = RequestStatus::kCancelled;
      result.message = "cancelled after formation";
      complete(pending, std::move(result));
      return;
    }
    if (expired()) {
      result.status = RequestStatus::kDeadlineExceeded;
      result.message = "deadline passed after formation";
      complete(pending, std::move(result));
      return;
    }

    // Stage: solve.
    Stopwatch solve_clock;
    solver::InverseResult inverse = engine.recover(pending->request.inverse);
    result.solve_seconds = solve_clock.elapsed_seconds();
    stats_.solve.record(result.solve_seconds);
    if (cancelled()) {
      result.status = RequestStatus::kCancelled;
      result.message = "cancelled after solve";
      complete(pending, std::move(result));
      return;
    }
    if (expired()) {
      result.status = RequestStatus::kDeadlineExceeded;
      result.message = "deadline passed after solve";
      complete(pending, std::move(result));
      return;
    }

    // Stage: reconstruct -- assemble the response; the shape's topology
    // report comes from the FormationCache (one analysis per shape).
    Stopwatch reconstruct_clock;
    result.topology = cache->topology(engine);
    if (pending->request.anomaly_threshold) {
      const auto& grid = inverse.recovered;
      for (Index i = 0; i < grid.rows(); ++i) {
        for (Index j = 0; j < grid.cols(); ++j) {
          if (grid.at(i, j) > *pending->request.anomaly_threshold) ++result.anomalies;
        }
      }
    }
    result.inverse = std::move(inverse);
    result.status = RequestStatus::kOk;
    result.reconstruct_seconds = reconstruct_clock.elapsed_seconds();
    stats_.reconstruct.record(result.reconstruct_seconds);
    complete(pending, std::move(result));
  } catch (const std::exception& e) {
    result.status = RequestStatus::kSolverFailed;
    result.message = e.what();
    complete(pending, std::move(result));
  }
}

void Server::complete(const PendingPtr& pending, ParametrizeResult&& result) {
  switch (result.status) {
    case RequestStatus::kOk: stats_.on_completed_ok(); break;
    case RequestStatus::kDeadlineExceeded: stats_.on_deadline_exceeded(); break;
    case RequestStatus::kCancelled: stats_.on_cancelled(); break;
    case RequestStatus::kSolverFailed: stats_.on_solver_failed(); break;
    case RequestStatus::kRejected: break;  // rejections never reach here
  }
  stats_.end_to_end.record(seconds_between(pending->enqueued_at, Clock::now()));
  pending->promise.set_value(std::move(result));
  std::lock_guard lock(state_mu_);
  --outstanding_;
  if (outstanding_ == 0) all_done_.notify_all();
}

void Server::drain() {
  bool flush_unstarted = false;
  {
    std::lock_guard lock(state_mu_);
    accepting_ = false;
    flush_unstarted = !started_;
  }
  if (flush_unstarted) {
    // No workers exist to serve what's queued; cancel it explicitly so every
    // accepted future still completes exactly once.
    for (PendingPtr& p : queue_.drain_now()) {
      ParametrizeResult r;
      r.status = RequestStatus::kCancelled;
      r.message = "server drained before start";
      complete(p, std::move(r));
    }
  }
  std::unique_lock lock(state_mu_);
  all_done_.wait(lock, [&] { return outstanding_ == 0; });
}

void Server::shutdown() {
  drain();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(state_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    workers.swap(workers_);
  }
  queue_.close();  // wakes idle workers; pop_batch returns empty
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

Stats Server::stats() const { return stats_.snapshot(queue_.high_water()); }

}  // namespace parma::serve

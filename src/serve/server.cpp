#include "serve/server.hpp"

#include <cmath>
#include <limits>
#include <new>
#include <sstream>
#include <utility>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "solver/full_system_solver.hpp"

namespace parma::serve {

namespace {

Real seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<Real>(to - from).count();
}

ParametrizeResult make_reject(std::string message) {
  ParametrizeResult r;
  r.status = RequestStatus::kRejected;
  r.message = std::move(message);
  return r;
}

}  // namespace

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDeadlineExceeded: return "deadline-exceeded";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kSolverFailed: return "solver-failed";
    case RequestStatus::kInvalidInput: return "invalid-input";
    case RequestStatus::kBreakerOpen: return "breaker-open";
    case RequestStatus::kDegradedResult: return "degraded-result";
  }
  return "?";
}

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidOptions: return "invalid-options";
    case SubmitStatus::kLoadShed: return "load-shed";
  }
  return "?";
}

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

void ServerOptions::validate() const {
  const auto fail = [](const char* what, auto got) {
    std::ostringstream os;
    os << "invalid ServerOptions: " << what << ", got " << got;
    throw core::InvalidOptions(os.str());
  };
  if (queue_capacity < 1) fail("queue_capacity must be >= 1", queue_capacity);
  if (workers < 1) fail("workers must be >= 1", workers);
  if (max_batch < 1) fail("max_batch must be >= 1", max_batch);
  if (max_attempts < 1) fail("max_attempts must be >= 1", max_attempts);
  if (retry_backoff.count() < 0) fail("retry_backoff must be >= 0 ms", retry_backoff.count());
  if (retry_backoff_cap < retry_backoff) {
    fail("retry_backoff_cap must be >= retry_backoff", retry_backoff_cap.count());
  }
  if (breaker_failure_threshold < 0) {
    fail("breaker_failure_threshold must be >= 0", breaker_failure_threshold);
  }
  if (breaker_cooldown.count() < 0) {
    fail("breaker_cooldown must be >= 0 ms", breaker_cooldown.count());
  }
  if (degraded_high_water < 0.0 || degraded_high_water > 1.0) {
    fail("degraded_high_water must be in [0, 1]", degraded_high_water);
  }
  if (degraded_sustain.count() < 0) {
    fail("degraded_sustain must be >= 0 ms", degraded_sustain.count());
  }
}

void Ticket::cancel() {
  if (pending_) pending_->cancelled.store(true, std::memory_order_relaxed);
}

Server::Server(ServerOptions options)
    : options_(options),
      cache_(std::make_shared<core::FormationCache>()),
      queue_(options.queue_capacity),
      breakers_(BreakerOptions{options.breaker_failure_threshold,
                               options.breaker_cooldown}) {
  options_.validate();
  if (!options_.deferred_start) start();
}

Server::~Server() { shutdown(); }

void Server::start() {
  std::lock_guard lock(state_mu_);
  PARMA_REQUIRE(!shut_down_, "cannot start a server after shutdown");
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (Index w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Ticket Server::try_submit(ParametrizeRequest request) {
  return admit(std::move(request), /*blocking=*/false, std::chrono::milliseconds{0});
}

Ticket Server::submit(ParametrizeRequest request, std::chrono::milliseconds timeout) {
  return admit(std::move(request), /*blocking=*/true, timeout);
}

Ticket Server::admit(ParametrizeRequest&& request, bool blocking,
                     std::chrono::milliseconds timeout) {
  stats_.on_submitted();
  Ticket ticket;

  // Admission-time validation -- the single validation the request ever
  // gets; the pipeline hot path (Engine::form_equations overload) skips it.
  std::string invalid;
  bool bad_payload = false;
  try {
    request.options.validate();
    PARMA_REQUIRE(request.options.timing_mode == core::TimingMode::kRealThreads,
                  "serving runs on real threads; kVirtualReplay is not servable");
    request.measurement.spec.validate();
    PARMA_REQUIRE(request.measurement.z.rows() == request.measurement.spec.rows &&
                      request.measurement.z.cols() == request.measurement.spec.cols,
                  "measurement matrix does not match device");
    // Opt-in robustness: a payload whose invalid Z entries can be masked away
    // is admissible. Validation runs on a masked probe copy -- the request
    // itself stays pristine so run_attempt's per-attempt masking sees (and
    // counts) every invalid entry, admission-time and injected alike.
    if (request.auto_mask_invalid) {
      mea::Measurement probe = request.measurement;
      mea::mask_invalid_entries(probe);
      mea::validate_measurement(probe);
    } else {
      mea::validate_measurement(request.measurement);
    }
  } catch (const mea::InvalidMeasurement& e) {
    invalid = e.what();
    bad_payload = true;
  } catch (const std::exception& e) {
    invalid = e.what();
  }
  if (!invalid.empty()) {
    stats_.on_rejected_invalid();
    std::promise<ParametrizeResult> promise;
    ticket.future_ = promise.get_future();
    ticket.admission_ = SubmitStatus::kInvalidOptions;
    ParametrizeResult reject = make_reject(std::move(invalid));
    if (bad_payload) reject.status = RequestStatus::kInvalidInput;
    promise.set_value(std::move(reject));
    return ticket;
  }

  // Degraded-mode shedding: evaluated on every admission (the bookkeeping has
  // to see queue pressure even from high-priority traffic), sheds only kLow.
  if (should_shed(request.priority)) {
    stats_.on_rejected_load_shed();
    std::promise<ParametrizeResult> promise;
    ticket.future_ = promise.get_future();
    ticket.admission_ = SubmitStatus::kLoadShed;
    promise.set_value(
        make_reject("degraded mode: low-priority request shed at admission"));
    return ticket;
  }

  auto pending = std::make_shared<detail::PendingRequest>();
  pending->request = std::move(request);
  pending->enqueued_at = Clock::now();
  if (pending->request.timeout) {
    pending->deadline = pending->enqueued_at + *pending->request.timeout;
  }
  ticket.future_ = pending->promise.get_future();

  {
    std::lock_guard lock(state_mu_);
    if (!accepting_ || shut_down_) {
      stats_.on_rejected_shutting_down();
      ticket.admission_ = SubmitStatus::kShuttingDown;
      pending->promise.set_value(make_reject("server is shutting down"));
      return ticket;
    }
    // Counted before the push so drain() cannot observe a zero-outstanding
    // instant between admission and enqueue.
    ++outstanding_;
  }

  const bool pushed =
      blocking ? queue_.push(pending, timeout) : queue_.try_push(pending);
  if (!pushed) {
    {
      std::lock_guard lock(state_mu_);
      --outstanding_;
      if (outstanding_ == 0) all_done_.notify_all();
    }
    const bool closed = queue_.closed();
    if (closed) {
      stats_.on_rejected_shutting_down();
    } else {
      stats_.on_rejected_queue_full();
    }
    ticket.admission_ = closed ? SubmitStatus::kShuttingDown : SubmitStatus::kQueueFull;
    pending->promise.set_value(
        make_reject(closed ? "server is shutting down" : "admission queue full"));
    return ticket;
  }

  stats_.on_accepted();
  ticket.admission_ = SubmitStatus::kAccepted;
  ticket.pending_ = std::move(pending);
  return ticket;
}

void Server::worker_loop() {
  exec::ExecutorCache warm;  // this worker's executors, reused across batches
  const auto can_batch = [](const PendingPtr& front, const PendingPtr& candidate) {
    return batchable(front->request, candidate->request);
  };
  for (;;) {
    std::vector<PendingPtr> batch = queue_.pop_batch(options_.max_batch, can_batch);
    if (batch.empty()) return;  // queue closed and drained
    process_batch(batch, warm);
  }
}

void Server::process_batch(std::vector<PendingPtr>& batch, exec::ExecutorCache& warm) {
  const auto batch_size = static_cast<Index>(batch.size());
  stats_.on_batch(batch.size());
  const Clock::time_point picked_up = Clock::now();

  // Admit-stage exit checks: cancelled or expired requests leave the batch
  // here, before any formation work.
  std::vector<PendingPtr> runnable;
  runnable.reserve(batch.size());
  for (PendingPtr& p : batch) {
    p->queue_seconds = seconds_between(p->enqueued_at, picked_up);
    stats_.queue_wait.record(p->queue_seconds);
    if (p->cancelled.load(std::memory_order_relaxed)) {
      ParametrizeResult r;
      r.status = RequestStatus::kCancelled;
      r.message = "cancelled while queued";
      r.queue_seconds = p->queue_seconds;
      complete(p, std::move(r));
      continue;
    }
    if (p->deadline && picked_up >= *p->deadline) {
      ParametrizeResult r;
      r.status = RequestStatus::kDeadlineExceeded;
      r.message = "deadline passed while queued";
      r.queue_seconds = p->queue_seconds;
      complete(p, std::move(r));
      continue;
    }
    runnable.push_back(std::move(p));
  }
  if (runnable.empty()) return;

  // One warmed executor serves the whole batch (the requests agreed on
  // backend + workers via the batch key). warm_executors = false is the
  // naive baseline: serve_one lets the engine build a fresh executor per
  // request.
  exec::Executor* executor = nullptr;
  if (options_.warm_executors) {
    const BatchKey key = batch_key(runnable.front()->request);
    executor = &warm.get(key.backend, key.workers);
  }
  for (const PendingPtr& p : runnable) {
    const std::shared_ptr<core::FormationCache> cache =
        options_.share_cache ? cache_ : std::make_shared<core::FormationCache>();
    serve_one(p, executor, cache, batch_size);
  }
}

bool Server::should_shed(Priority priority) {
  if (options_.degraded_high_water <= 0.0) return false;
  const auto threshold = static_cast<std::size_t>(std::ceil(
      options_.degraded_high_water * static_cast<Real>(options_.queue_capacity)));
  const std::size_t depth = queue_.size();
  const Clock::time_point now = Clock::now();
  std::lock_guard lock(state_mu_);
  if (depth >= threshold) {
    if (!queue_hot_since_) queue_hot_since_ = now;
    if (!degraded_.load(std::memory_order_relaxed) &&
        now - *queue_hot_since_ >= options_.degraded_sustain) {
      degraded_.store(true, std::memory_order_relaxed);
      stats_.on_degraded_entered();
    }
  } else if (depth * 2 < threshold) {
    // Hysteresis: exit only once the queue has fallen below half the
    // threshold, so degraded mode does not flap at the boundary.
    queue_hot_since_.reset();
    degraded_.store(false, std::memory_order_relaxed);
  } else if (!degraded_.load(std::memory_order_relaxed)) {
    // Pressure relaxed before the sustain window elapsed.
    queue_hot_since_.reset();
  }
  return degraded_.load(std::memory_order_relaxed) && priority == Priority::kLow;
}

std::chrono::microseconds Server::backoff_delay(Index attempt) {
  const Real base_ms = static_cast<Real>(options_.retry_backoff.count());
  const Real cap_ms = static_cast<Real>(options_.retry_backoff_cap.count());
  const int doublings = static_cast<int>(std::min<Index>(attempt > 0 ? attempt - 1 : 0, 20));
  const Real ms = std::min(std::ldexp(base_ms, doublings), cap_ms);
  // One deterministic jitter draw per retry server-wide: with a fixed seed
  // and submission order, the backoff schedule replays exactly.
  Rng rng(options_.retry_jitter_seed +
          retry_sequence_.fetch_add(1, std::memory_order_relaxed));
  const Real jitter = rng.uniform(0.5, 1.0);
  return std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0 * jitter));
}

void Server::serve_one(const PendingPtr& pending, exec::Executor* executor,
                       const std::shared_ptr<core::FormationCache>& cache,
                       Index batch_size) {
  const BreakerBoard::Shape shape{pending->request.measurement.spec.rows,
                                  pending->request.measurement.spec.cols};
  if (!breakers_.allow(shape, Clock::now())) {
    ParametrizeResult result;
    result.batch_size = batch_size;
    result.queue_seconds = pending->queue_seconds;
    result.status = RequestStatus::kBreakerOpen;
    result.message = "circuit breaker open for this device shape";
    complete(pending, std::move(result));
    return;
  }

  ParametrizeResult result;
  Index attempt = 0;
  for (;;) {
    ++attempt;
    AttemptFailure failure = AttemptFailure::kNone;
    result = run_attempt(pending, executor, cache, batch_size, failure);
    result.attempts = attempt;
    if (failure == AttemptFailure::kNone || failure == AttemptFailure::kFatal) break;
    if (attempt >= options_.max_attempts) break;
    stats_.on_retry();
    const std::chrono::microseconds delay = backoff_delay(attempt);
    if (pending->deadline && Clock::now() + delay >= *pending->deadline) {
      result.status = RequestStatus::kDeadlineExceeded;
      result.message = "deadline would pass during retry backoff";
      break;
    }
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    if (pending->cancelled.load(std::memory_order_relaxed)) {
      result.status = RequestStatus::kCancelled;
      result.message = "cancelled between attempts";
      break;
    }
  }
  if (result.has_result() && attempt > 1) stats_.on_retry_success();

  // Breaker feedback: only solver failures trip it -- deadline, cancel, and
  // invalid input say nothing about the shape's health. A degraded result is
  // a *successful* pipeline run (the quality floor is about the input, not
  // the shape), so it counts as a success.
  switch (result.status) {
    case RequestStatus::kOk:
    case RequestStatus::kDegradedResult: breakers_.on_success(shape); break;
    case RequestStatus::kSolverFailed: breakers_.on_failure(shape, Clock::now()); break;
    default: breakers_.on_neutral(shape); break;
  }
  complete(pending, std::move(result));
}

ParametrizeResult Server::run_attempt(const PendingPtr& pending,
                                      exec::Executor* executor,
                                      const std::shared_ptr<core::FormationCache>& cache,
                                      Index batch_size, AttemptFailure& failure) {
  failure = AttemptFailure::kNone;
  ParametrizeResult result;
  result.batch_size = batch_size;
  result.queue_seconds = pending->queue_seconds;
  const auto expired = [&] {
    return pending->deadline && Clock::now() >= *pending->deadline;
  };
  const auto cancelled = [&] {
    return pending->cancelled.load(std::memory_order_relaxed);
  };
  // Any stage throwing fails this attempt alone -- the server and the rest
  // of the batch carry on; `failure` tells serve_one whether to retry.
  try {
    // Retries need the original payload intact, so every attempt runs on a
    // copy of the measurement.
    mea::Measurement measurement = pending->request.measurement;
    if (fault::should_fire(fault::Point::kDropMeasurement)) {
      measurement.z(measurement.z.rows() / 2, measurement.z.cols() / 2) =
          std::numeric_limits<Real>::quiet_NaN();
    }
    if (fault::should_fire(fault::Point::kNoiseMeasurement)) {
      Real& entry = measurement.z(0, measurement.z.cols() - 1);
      entry = -entry;  // flips sign: physically impossible, caught on admit
    }
    // Per-attempt auto-masking: recovers entries an injected fault (or the
    // transport) corrupted after admission, the same way admission recovered
    // the original payload's invalid entries.
    Index auto_masked = 0;
    if (pending->request.auto_mask_invalid) {
      auto_masked = mea::mask_invalid_entries(measurement);
    }
    const Index total_entries = measurement.z.rows() * measurement.z.cols();
    result.quality.masked_entries = mea::masked_entry_count(measurement);
    result.quality.auto_masked = auto_masked;
    result.quality.masked_fraction =
        total_entries > 0
            ? static_cast<Real>(result.quality.masked_entries) / static_cast<Real>(total_entries)
            : 0.0;
    core::Engine engine(std::move(measurement));

    // Stage: form.
    if (fault::should_fire(fault::Point::kAllocFailure)) throw std::bad_alloc{};
    Stopwatch form_clock;
    core::StrategyOptions form_options = pending->request.options;
    if (pending->request.solve_method == SolveMethod::kFullSystem) {
      form_options.keep_system = true;  // the full-system solver consumes it
    }
    const core::FormationResult formation =
        (executor != nullptr) ? engine.form_equations(form_options, *executor)
                              : engine.form_equations(form_options);
    result.form_seconds = form_clock.elapsed_seconds();
    stats_.form.record(result.form_seconds);
    result.equations = engine.spec().num_equations();
    result.equation_bytes = formation.equation_bytes;
    if (cancelled()) {
      result.status = RequestStatus::kCancelled;
      result.message = "cancelled after formation";
      return result;
    }
    if (expired()) {
      result.status = RequestStatus::kDeadlineExceeded;
      result.message = "deadline passed after formation";
      return result;
    }

    // Stage: solve.
    Stopwatch solve_clock;
    solver::InverseResult inverse;
    if (pending->request.solve_method == SolveMethod::kFullSystem) {
      // The kernel context hands the solver this worker's warm executor and
      // the shape-shared symbolic analysis, so repeated requests of one
      // shape skip the pattern computation entirely.
      solver::KernelContext kernel_context;
      kernel_context.executor = executor;
      if (pending->request.full_system.use_kernels) {
        kernel_context.symbolic = cache->system_symbolic(formation.system);
      }
      solver::FullSystemResult full =
          solver::solve_full_system(formation.system, engine.measurement(),
                                    pending->request.full_system, kernel_context);
      inverse.recovered = std::move(full.recovered);
      inverse.iterations = full.iterations;
      inverse.converged = full.converged;
      inverse.final_misfit = full.final_residual_rms;
      inverse.misfit_history = std::move(full.residual_history);
      inverse.diagnostics = full.diagnostics;
      inverse.termination = full.termination;
      inverse.robust = std::move(full.robust);
    } else {
      inverse = engine.recover(pending->request.inverse);
    }
    result.solve_diagnostics = inverse.diagnostics;
    result.solve_seconds = solve_clock.elapsed_seconds();
    stats_.solve.record(result.solve_seconds);
    if (cancelled()) {
      result.status = RequestStatus::kCancelled;
      result.message = "cancelled after solve";
      return result;
    }
    if (expired()) {
      result.status = RequestStatus::kDeadlineExceeded;
      result.message = "deadline passed after solve";
      return result;
    }

    // Stage: reconstruct -- assemble the response; the shape's topology
    // report comes from the FormationCache (one analysis per shape).
    Stopwatch reconstruct_clock;
    result.topology = cache->topology(engine);
    if (pending->request.anomaly_threshold) {
      const auto& grid = inverse.recovered;
      for (Index i = 0; i < grid.rows(); ++i) {
        for (Index j = 0; j < grid.cols(); ++j) {
          if (grid.at(i, j) > *pending->request.anomaly_threshold) ++result.anomalies;
        }
      }
    }
    // Quality report: robust-estimation and conditioning diagnostics of the
    // solve, then the request's QualityFloor verdict.
    result.quality.outlier_entries =
        static_cast<Index>(inverse.robust.downweighted_entries.size());
    const Index unmasked = total_entries - result.quality.masked_entries;
    result.quality.outlier_fraction =
        unmasked > 0 ? static_cast<Real>(result.quality.outlier_entries) /
                           static_cast<Real>(unmasked)
                     : 0.0;
    result.quality.robust_scale = inverse.robust.final_scale;
    result.quality.condition_estimate = inverse.robust.condition_estimate;
    result.quality.numerical_breakdown =
        inverse.termination == solver::TerminationReason::kNumericalBreakdown;
    result.quality.converged = inverse.converged;
    result.inverse = std::move(inverse);
    result.status = RequestStatus::kOk;

    const QualityFloor& floor = pending->request.quality_floor;
    if (floor.enabled()) {
      std::ostringstream why;
      if (result.quality.masked_fraction > floor.max_masked_fraction) {
        why << "masked fraction " << result.quality.masked_fraction << " > "
            << floor.max_masked_fraction << "; ";
      }
      if (result.quality.outlier_fraction > floor.max_outlier_fraction) {
        why << "outlier fraction " << result.quality.outlier_fraction << " > "
            << floor.max_outlier_fraction << "; ";
      }
      if (floor.max_condition_estimate > 0.0 &&
          !(result.quality.condition_estimate <= floor.max_condition_estimate)) {
        why << "condition estimate " << result.quality.condition_estimate << " > "
            << floor.max_condition_estimate << "; ";
      }
      if (floor.require_convergence && !result.quality.converged) {
        why << "solver did not converge; ";
      }
      if (floor.demote_on_breakdown && result.quality.numerical_breakdown) {
        why << "numerical breakdown; ";
      }
      const std::string reasons = why.str();
      if (!reasons.empty()) {
        result.quality.degraded = true;
        result.status = RequestStatus::kDegradedResult;
        result.message = "quality floor: " + reasons.substr(0, reasons.size() - 2);
      }
    }
    result.reconstruct_seconds = reconstruct_clock.elapsed_seconds();
    stats_.reconstruct.record(result.reconstruct_seconds);
  } catch (const mea::InvalidMeasurement& e) {
    // The original payload passed admission validation, so the corruption
    // happened in flight (e.g. an injected fault): retrying the pristine
    // copy can succeed.
    failure = AttemptFailure::kInvalidInput;
    result.status = RequestStatus::kInvalidInput;
    result.message = e.what();
  } catch (const ContractError& e) {
    failure = AttemptFailure::kFatal;  // config/contract bug; retry can't help
    result.status = RequestStatus::kSolverFailed;
    result.message = e.what();
  } catch (const std::bad_alloc&) {
    failure = AttemptFailure::kRetryable;
    result.status = RequestStatus::kSolverFailed;
    result.message = "allocation failure in the pipeline";
  } catch (const std::exception& e) {
    // NumericalError, fault::InjectedFault, and anything else transient.
    failure = AttemptFailure::kRetryable;
    result.status = RequestStatus::kSolverFailed;
    result.message = e.what();
  }
  return result;
}

void Server::complete(const PendingPtr& pending, ParametrizeResult&& result) {
  switch (result.status) {
    case RequestStatus::kOk: stats_.on_completed_ok(); break;
    case RequestStatus::kDeadlineExceeded: stats_.on_deadline_exceeded(); break;
    case RequestStatus::kCancelled: stats_.on_cancelled(); break;
    case RequestStatus::kSolverFailed: stats_.on_solver_failed(); break;
    case RequestStatus::kInvalidInput: stats_.on_invalid_input(); break;
    case RequestStatus::kBreakerOpen: stats_.on_breaker_open(); break;
    case RequestStatus::kDegradedResult: stats_.on_degraded_result(); break;
    case RequestStatus::kRejected: break;  // rejections never reach here
  }
  if (result.has_result()) {
    stats_.on_solve(result.inverse.iterations, result.inverse.converged,
                    result.solve_diagnostics.tikhonov_retries,
                    result.solve_diagnostics.dense_fallbacks);
    stats_.on_quality(result.quality.masked_entries, result.quality.auto_masked,
                      result.quality.outlier_entries, result.quality.numerical_breakdown);
  }
  stats_.end_to_end.record(seconds_between(pending->enqueued_at, Clock::now()));
  pending->promise.set_value(std::move(result));
  std::lock_guard lock(state_mu_);
  --outstanding_;
  if (outstanding_ == 0) all_done_.notify_all();
}

void Server::drain() {
  bool flush_unstarted = false;
  {
    std::lock_guard lock(state_mu_);
    accepting_ = false;
    flush_unstarted = !started_;
  }
  if (flush_unstarted) {
    // No workers exist to serve what's queued; cancel it explicitly so every
    // accepted future still completes exactly once.
    for (PendingPtr& p : queue_.drain_now()) {
      ParametrizeResult r;
      r.status = RequestStatus::kCancelled;
      r.message = "server drained before start";
      complete(p, std::move(r));
    }
  }
  std::unique_lock lock(state_mu_);
  all_done_.wait(lock, [&] { return outstanding_ == 0; });
}

void Server::shutdown() {
  drain();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(state_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    workers.swap(workers_);
  }
  queue_.close();  // wakes idle workers; pop_batch returns empty
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

Stats Server::stats() const {
  Stats s = stats_.snapshot(queue_.high_water(), breakers_.opened_events());
  s.breaker_open_shapes = breakers_.open_shapes();
  s.degraded = degraded_.load(std::memory_order_relaxed);
  const core::FormationCache::Stats cache_stats = cache_->stats();
  s.symbolic_cache_hits = cache_stats.symbolic_hits;
  s.symbolic_cache_misses = cache_stats.symbolic_misses;
  return s;
}

}  // namespace parma::serve

#include "serve/server.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <new>
#include <sstream>
#include <utility>

#include "async/adaptors.hpp"
#include "async/breaker.hpp"
#include "async/retry.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "solver/full_system_solver.hpp"

namespace parma::serve {

namespace {

Real seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<Real>(to - from).count();
}

ParametrizeResult make_reject(std::string message) {
  ParametrizeResult r;
  r.status = RequestStatus::kRejected;
  r.message = std::move(message);
  return r;
}

}  // namespace

// request_status_name / submit_status_name moved to serve/status.cpp.

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

ResiliencePolicy ServerOptions::resilience() const {
  ResiliencePolicy merged = policy;
  // Deprecated forwarders: a field changed from its default wins over the
  // policy value, so code written against the old loose fields keeps its
  // exact behavior for one release. Reading the fields here is the one
  // sanctioned use; everything else should migrate to policy.*.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const ServerOptions defaults{};
  if (max_attempts != defaults.max_attempts) merged.retry.max_attempts = max_attempts;
  if (retry_backoff != defaults.retry_backoff) merged.retry.backoff = retry_backoff;
  if (retry_backoff_cap != defaults.retry_backoff_cap) {
    merged.retry.backoff_cap = retry_backoff_cap;
  }
  if (retry_jitter_seed != defaults.retry_jitter_seed) {
    merged.retry.jitter_seed = retry_jitter_seed;
  }
  if (breaker_failure_threshold != defaults.breaker_failure_threshold) {
    merged.breaker.failure_threshold = breaker_failure_threshold;
  }
  if (breaker_cooldown != defaults.breaker_cooldown) {
    merged.breaker.cooldown = breaker_cooldown;
  }
  if (degraded_high_water != defaults.degraded_high_water) {
    merged.shedding.high_water = degraded_high_water;
  }
  if (degraded_sustain != defaults.degraded_sustain) {
    merged.shedding.sustain = degraded_sustain;
  }
#pragma GCC diagnostic pop
  return merged;
}

void ServerOptions::validate() const {
  const auto fail = [](const char* what, auto got) {
    std::ostringstream os;
    os << "invalid ServerOptions: " << what << ", got " << got;
    throw core::InvalidOptions(os.str());
  };
  if (queue_capacity < 1) fail("queue_capacity must be >= 1", queue_capacity);
  if (workers < 1) fail("workers must be >= 1", workers);
  if (max_batch < 1) fail("max_batch must be >= 1", max_batch);
  if (max_inflight_batches < 0) {
    fail("max_inflight_batches must be >= 0", max_inflight_batches);
  }
  resilience().validate();
}

void Ticket::cancel() {
  if (pending_) pending_->cancelled.store(true, std::memory_order_relaxed);
}

void ExternalTicket::cancel() {
  if (pending_) pending_->cancelled.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Chain context types.

/// Outcome of one retried attempt chain; the retry/breaker adaptors mutate
/// the result through the shared pointer (deadline-during-backoff,
/// cancelled-between-attempts).
struct Server::AttemptOutcome {
  ParametrizeResult result;
  AttemptFailure failure = AttemptFailure::kNone;
};

/// Per-batch shared context: the popped requests, which of them survived the
/// admit-stage exit checks, and the executor leased for the whole batch.
struct Server::BatchContext {
  std::vector<PendingPtr> batch;
  Index batch_size = 0;
  std::vector<char> runnable;
  exec::ExecutorPool::Lease lease;
};

/// Per-attempt state threaded through the prep/form/solve/reconstruct stage
/// tasks. `done` marks the attempt terminal (error, cancel, deadline) so
/// later stages and gates short-circuit, exactly where the historical
/// single-pass loop returned early.
struct Server::AttemptState {
  PendingPtr pending;
  BatchPtr batch;
  std::shared_ptr<core::FormationCache> cache;
  OutcomePtr out;
  int attempt = 1;
  bool done = false;
  Index total_entries = 0;
  std::optional<core::Engine> engine;
  std::optional<core::FormationResult> formation;
  solver::InverseResult inverse;

  void fail(AttemptFailure failure, RequestStatus status, std::string message) {
    out->failure = failure;
    out->result.status = status;
    out->result.message = std::move(message);
    done = true;
  }
};

// ---------------------------------------------------------------------------
// Construction / admission.

Server::Server(ServerOptions options)
    : options_(options),
      policy_(options.resilience()),
      cache_(std::make_shared<core::FormationCache>()),
      queue_(options.queue_capacity),
      breakers_(policy_.breaker) {
  options_.validate();
  max_inflight_ = options_.max_inflight_batches > 0
                      ? static_cast<std::size_t>(options_.max_inflight_batches)
                      : static_cast<std::size_t>(options_.workers) + 1;
  scope_.attach_timers(timers_);
  if (!options_.deferred_start) start();
}

Server::~Server() { shutdown(); }

void Server::start() {
  std::lock_guard lock(state_mu_);
  PARMA_REQUIRE(!shut_down_, "cannot start a server after shutdown");
  if (started_) return;
  started_ = true;
  scheduler_ = std::make_unique<async::Scheduler>(options_.workers);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Ticket Server::try_submit(ParametrizeRequest request) {
  return admit(std::move(request), /*blocking=*/false, std::chrono::milliseconds{0});
}

Ticket Server::submit(ParametrizeRequest request, std::chrono::milliseconds timeout) {
  return admit(std::move(request), /*blocking=*/true, timeout);
}

ExternalTicket Server::submit_external(
    ParametrizeRequest request, std::function<void(ParametrizeResult&&)> on_complete) {
  PARMA_REQUIRE(on_complete != nullptr, "submit_external needs a completion callback");
  // Non-blocking by contract: the caller is a transport I/O loop, and the
  // bounded queue's backpressure must surface as an immediate rejection the
  // peer can see, not as a stalled socket reader.
  Ticket ticket = admit(std::move(request), /*blocking=*/false,
                        std::chrono::milliseconds{0}, std::move(on_complete));
  ExternalTicket external;
  external.admission_ = ticket.admission_;
  external.pending_ = std::move(ticket.pending_);
  return external;
}

Ticket Server::admit(ParametrizeRequest&& request, bool blocking,
                     std::chrono::milliseconds timeout,
                     std::function<void(ParametrizeResult&&)> on_complete) {
  stats_.on_submitted();
  Ticket ticket;

  // Callback-completing admissions never touch a promise: every rejection
  // path below funnels through this helper, and accepted requests complete
  // through PendingRequest::on_complete inside complete().
  const auto reject_now = [&ticket, &on_complete](SubmitStatus admission,
                                                  ParametrizeResult&& result) {
    ticket.admission_ = admission;
    if (on_complete) {
      on_complete(std::move(result));
    } else {
      std::promise<ParametrizeResult> promise;
      ticket.future_ = promise.get_future();
      promise.set_value(std::move(result));
    }
  };

  // Admission-time validation -- the single validation the request ever
  // gets; the pipeline hot path (Engine::form_equations overload) skips it.
  std::string invalid;
  bool bad_payload = false;
  try {
    request.options.validate();
    PARMA_REQUIRE(request.options.timing_mode == core::TimingMode::kRealThreads,
                  "serving runs on real threads; kVirtualReplay is not servable");
    request.measurement.spec.validate();
    PARMA_REQUIRE(request.measurement.z.rows() == request.measurement.spec.rows &&
                      request.measurement.z.cols() == request.measurement.spec.cols,
                  "measurement matrix does not match device");
    // Opt-in robustness: a payload whose invalid Z entries can be masked away
    // is admissible. Validation runs on a masked probe copy -- the request
    // itself stays pristine so the per-attempt masking sees (and counts)
    // every invalid entry, admission-time and injected alike.
    if (request.auto_mask_invalid) {
      mea::Measurement probe = request.measurement;
      mea::mask_invalid_entries(probe);
      mea::validate_measurement(probe);
    } else {
      mea::validate_measurement(request.measurement);
    }
  } catch (const mea::InvalidMeasurement& e) {
    invalid = e.what();
    bad_payload = true;
  } catch (const std::exception& e) {
    invalid = e.what();
  }
  if (!invalid.empty()) {
    stats_.on_rejected_invalid();
    ParametrizeResult reject = make_reject(std::move(invalid));
    if (bad_payload) reject.status = RequestStatus::kInvalidInput;
    reject_now(SubmitStatus::kInvalidOptions, std::move(reject));
    return ticket;
  }

  // Degraded-mode shedding: evaluated on every admission (the bookkeeping has
  // to see queue pressure even from high-priority traffic), sheds only kLow.
  if (should_shed(request.priority)) {
    stats_.on_rejected_load_shed();
    reject_now(SubmitStatus::kLoadShed,
               make_reject("degraded mode: low-priority request shed at admission"));
    return ticket;
  }

  auto pending = std::make_shared<detail::PendingRequest>();
  pending->request = std::move(request);
  pending->on_complete = std::move(on_complete);
  pending->enqueued_at = Clock::now();
  if (pending->request.timeout) {
    pending->deadline = pending->enqueued_at + *pending->request.timeout;
  } else if (policy_.default_deadline) {
    pending->deadline = pending->enqueued_at + *policy_.default_deadline;
  }
  if (!pending->on_complete) ticket.future_ = pending->promise.get_future();

  // Rejection after `pending` exists: the promise (or callback) lives there
  // now, so the outcome must flow through it. Runs outside state_mu_ -- a
  // transport completion callback may re-enter the server.
  const auto deliver = [](const std::shared_ptr<detail::PendingRequest>& p,
                          ParametrizeResult&& result) {
    if (p->on_complete) {
      p->on_complete(std::move(result));
    } else {
      p->promise.set_value(std::move(result));
    }
  };

  bool closed_at_admission = false;
  {
    std::lock_guard lock(state_mu_);
    if (!accepting_ || shut_down_) {
      closed_at_admission = true;
    } else {
      // Counted before the push so drain() cannot observe a zero-outstanding
      // instant between admission and enqueue.
      ++outstanding_;
    }
  }
  if (closed_at_admission) {
    stats_.on_rejected_shutting_down();
    ticket.admission_ = SubmitStatus::kShuttingDown;
    deliver(pending, make_reject("server is shutting down"));
    return ticket;
  }

  const bool pushed =
      blocking ? queue_.push(pending, timeout) : queue_.try_push(pending);
  if (!pushed) {
    {
      std::lock_guard lock(state_mu_);
      --outstanding_;
      if (outstanding_ == 0) all_done_.notify_all();
    }
    const bool closed = queue_.closed();
    if (closed) {
      stats_.on_rejected_shutting_down();
    } else {
      stats_.on_rejected_queue_full();
    }
    ticket.admission_ = closed ? SubmitStatus::kShuttingDown : SubmitStatus::kQueueFull;
    deliver(pending, make_reject(closed ? "server is shutting down"
                                        : "admission queue full"));
    return ticket;
  }

  stats_.on_accepted();
  ticket.admission_ = SubmitStatus::kAccepted;
  ticket.pending_ = std::move(pending);
  return ticket;
}

bool Server::should_shed(Priority priority) {
  if (policy_.shedding.high_water <= 0.0) return false;
  const auto threshold = static_cast<std::size_t>(std::ceil(
      policy_.shedding.high_water * static_cast<Real>(options_.queue_capacity)));
  const std::size_t depth = queue_.size();
  const Clock::time_point now = Clock::now();
  std::lock_guard lock(state_mu_);
  if (depth >= threshold) {
    if (!queue_hot_since_) queue_hot_since_ = now;
    if (!degraded_.load(std::memory_order_relaxed) &&
        now - *queue_hot_since_ >= policy_.shedding.sustain) {
      degraded_.store(true, std::memory_order_relaxed);
      stats_.on_degraded_entered();
    }
  } else if (depth * 2 < threshold) {
    // Hysteresis: exit only once the queue has fallen below half the
    // threshold, so degraded mode does not flap at the boundary.
    queue_hot_since_.reset();
    degraded_.store(false, std::memory_order_relaxed);
  } else if (!degraded_.load(std::memory_order_relaxed)) {
    // Pressure relaxed before the sustain window elapsed.
    queue_hot_since_.reset();
  }
  return degraded_.load(std::memory_order_relaxed) && priority == Priority::kLow;
}

std::chrono::microseconds Server::backoff_delay(Index attempt) {
  const Real base_ms = static_cast<Real>(policy_.retry.backoff.count());
  const Real cap_ms = static_cast<Real>(policy_.retry.backoff_cap.count());
  const int doublings = static_cast<int>(std::min<Index>(attempt > 0 ? attempt - 1 : 0, 20));
  const Real ms = std::min(std::ldexp(base_ms, doublings), cap_ms);
  // One deterministic jitter draw per retry server-wide: with a fixed seed
  // and submission order, the backoff schedule replays exactly.
  Rng rng(policy_.retry.jitter_seed +
          retry_sequence_.fetch_add(1, std::memory_order_relaxed));
  const Real jitter = rng.uniform(0.5, 1.0);
  return std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0 * jitter));
}

// ---------------------------------------------------------------------------
// Dispatcher: pops shape-keyed batches and spawns their chains.

void Server::dispatcher_loop() {
  const auto can_batch = [](const PendingPtr& front, const PendingPtr& candidate) {
    return batchable(front->request, candidate->request);
  };
  for (;;) {
    // The in-flight window is the backpressure hinge: the dispatcher only
    // pops another batch when fewer than max_inflight_ chains are running,
    // so the admission queue keeps filling (degraded mode, high-water, and
    // deadline-while-queued semantics survive the async re-plumb).
    acquire_batch_slot();
    std::vector<PendingPtr> batch = queue_.pop_batch(options_.max_batch, can_batch);
    if (batch.empty()) {
      release_batch_slot();
      return;  // queue closed and drained
    }
    spawn_batch(std::move(batch));
  }
}

void Server::acquire_batch_slot() {
  std::unique_lock lock(state_mu_);
  slot_free_.wait(lock, [&] { return inflight_batches_ < max_inflight_; });
  ++inflight_batches_;
}

void Server::release_batch_slot() {
  {
    std::lock_guard lock(state_mu_);
    --inflight_batches_;
  }
  slot_free_.notify_one();
}

std::size_t Server::inflight_batches() const {
  std::lock_guard lock(state_mu_);
  return inflight_batches_;
}

void Server::spawn_batch(std::vector<PendingPtr> batch) {
  auto ctx = std::make_shared<BatchContext>();
  ctx->batch = std::move(batch);
  ctx->batch_size = static_cast<Index>(ctx->batch.size());
  ctx->runnable.assign(ctx->batch.size(), 0);

  // The batch chain: admit-stage exit checks, then the per-request chains
  // strictly in batch order (breaker feedback from request k is visible to
  // request k+1's admission, as in the historical loop), then teardown.
  // sequence() guarantees one request's failure never poisons the rest.
  std::vector<std::function<async::Task<async::Unit>()>> steps;
  steps.reserve(ctx->batch.size() + 1);
  steps.push_back([this, ctx] {
    return async::schedule(*scheduler_).then([this, ctx] { batch_admit(ctx); });
  });
  for (std::size_t i = 0; i < ctx->batch.size(); ++i) {
    steps.push_back([this, ctx, i]() -> async::Task<async::Unit> {
      if (ctx->runnable[i] == 0) return async::just();
      return make_request_task(ctx->batch[i], ctx);
    });
  }
  scope_.spawn(async::sequence(std::move(steps)).then([this, ctx] {
    ctx->lease.release();
    release_batch_slot();
  }));
}

void Server::batch_admit(const BatchPtr& ctx) {
  stats_.on_batch(ctx->batch.size());
  const Clock::time_point picked_up = Clock::now();

  // Admit-stage exit checks: cancelled or expired requests leave the batch
  // here, before any formation work.
  const PendingPtr* first_runnable = nullptr;
  for (std::size_t i = 0; i < ctx->batch.size(); ++i) {
    const PendingPtr& p = ctx->batch[i];
    p->queue_seconds = seconds_between(p->enqueued_at, picked_up);
    stats_.queue_wait.record(p->queue_seconds);
    if (p->cancelled.load(std::memory_order_relaxed)) {
      ParametrizeResult r;
      r.status = RequestStatus::kCancelled;
      r.message = "cancelled while queued";
      r.queue_seconds = p->queue_seconds;
      complete(p, std::move(r));
      continue;
    }
    if (p->deadline && picked_up >= *p->deadline) {
      ParametrizeResult r;
      r.status = RequestStatus::kDeadlineExceeded;
      r.message = "deadline passed while queued";
      r.queue_seconds = p->queue_seconds;
      complete(p, std::move(r));
      continue;
    }
    ctx->runnable[i] = 1;
    if (first_runnable == nullptr) first_runnable = &p;
  }
  if (first_runnable == nullptr) return;

  // One leased executor serves the whole batch (the requests agreed on
  // backend + workers via the batch key). warm_executors = false is the
  // naive baseline: the form stage lets the engine build a fresh executor
  // per request.
  if (options_.warm_executors) {
    const BatchKey key = batch_key((*first_runnable)->request);
    ctx->lease = executors_.acquire(key.backend, key.workers);
  }
}

// ---------------------------------------------------------------------------
// Per-request chain: breaker around retry around the staged attempt.

async::Task<async::Unit> Server::make_request_task(PendingPtr pending, BatchPtr batch) {
  const BreakerBoard::Shape shape{pending->request.measurement.spec.rows,
                                  pending->request.measurement.spec.cols};
  const std::shared_ptr<core::FormationCache> cache =
      options_.share_cache ? cache_ : std::make_shared<core::FormationCache>();

  async::RetryOptions<OutcomePtr> retry;
  retry.max_attempts = static_cast<int>(policy_.retry.max_attempts);
  retry.should_retry = [](const async::Try<OutcomePtr>& t) {
    const AttemptFailure failure = t.get()->failure;
    return failure == AttemptFailure::kRetryable ||
           failure == AttemptFailure::kInvalidInput;
  };
  retry.backoff_for = [this](int next_attempt) {
    stats_.on_retry();
    return backoff_delay(static_cast<Index>(next_attempt) - 1);
  };
  retry.before_wait = [pending](int, std::chrono::microseconds delay,
                                async::Try<OutcomePtr>& t) {
    if (pending->deadline && Clock::now() + delay >= *pending->deadline) {
      ParametrizeResult& result = t.get()->result;
      result.status = RequestStatus::kDeadlineExceeded;
      result.message = "deadline would pass during retry backoff";
      return false;
    }
    return true;
  };
  retry.after_wait = [pending](int, async::Try<OutcomePtr>& t) {
    if (pending->cancelled.load(std::memory_order_relaxed)) {
      ParametrizeResult& result = t.get()->result;
      result.status = RequestStatus::kCancelled;
      result.message = "cancelled between attempts";
      return false;
    }
    return true;
  };
  async::Task<OutcomePtr> attempts = async::retry_with_backoff<OutcomePtr>(
      [this, pending, batch, cache](int attempt) {
        async::Task<OutcomePtr> task = make_attempt_task(pending, batch, cache, attempt);
        return task;
      },
      std::move(retry), timers_);

  // Breaker feedback: only solver failures trip it -- deadline, cancel, and
  // invalid input say nothing about the shape's health. A degraded result is
  // a *successful* pipeline run (the quality floor is about the input, not
  // the shape), so it counts as a success. The fast-fail path reports
  // nothing, exactly like the historical early return.
  async::BreakerHooks<OutcomePtr> hooks;
  hooks.admit = [this, shape] { return breakers_.allow(shape, Clock::now()); };
  hooks.rejected = [pending, batch] {
    auto out = std::make_shared<AttemptOutcome>();
    out->result.batch_size = batch->batch_size;
    out->result.queue_seconds = pending->queue_seconds;
    out->result.status = RequestStatus::kBreakerOpen;
    out->result.message = "circuit breaker open for this device shape";
    return async::Try<OutcomePtr>::from_value(std::move(out));
  };
  hooks.classify = [](const async::Try<OutcomePtr>& t) {
    switch (t.get()->result.status) {
      case RequestStatus::kOk:
      case RequestStatus::kDegradedResult: return async::BreakerOutcome::kSuccess;
      case RequestStatus::kSolverFailed: return async::BreakerOutcome::kFailure;
      default: return async::BreakerOutcome::kNeutral;
    }
  };
  hooks.report = [this, shape](async::BreakerOutcome outcome) {
    switch (outcome) {
      case async::BreakerOutcome::kSuccess: breakers_.on_success(shape); break;
      case async::BreakerOutcome::kFailure: breakers_.on_failure(shape, Clock::now()); break;
      case async::BreakerOutcome::kNeutral: breakers_.on_neutral(shape); break;
    }
  };

  // Keep the request chain's completion at the very end so every path
  // (fast-fail included) funnels through exactly one complete().
  return async::with_breaker(std::move(attempts), std::move(hooks))
      .then([this, pending](OutcomePtr out) {
        if (out->result.has_result() && out->result.attempts > 1) {
          stats_.on_retry_success();
        }
        complete(pending, std::move(out->result));
      });
}

async::Task<Server::OutcomePtr> Server::make_attempt_task(
    PendingPtr pending, BatchPtr batch, std::shared_ptr<core::FormationCache> cache,
    int attempt) {
  auto state = std::make_shared<AttemptState>();
  state->pending = std::move(pending);
  state->batch = std::move(batch);
  state->cache = std::move(cache);
  state->out = std::make_shared<AttemptOutcome>();
  state->out->result.batch_size = state->batch->batch_size;
  state->out->result.queue_seconds = state->pending->queue_seconds;
  state->attempt = attempt;

  // Each stage is its own scheduler task, so stages of different batches
  // interleave on the same threads (batch B forms while batch A solves).
  // The cancellation/deadline gates and the instrument sinks attach as
  // adaptors around the stage tasks, at exactly the historical checkpoints.
  std::vector<std::function<async::Task<async::Unit>()>> stages;
  stages.reserve(4);
  stages.push_back([this, state] {
    return async::schedule(*scheduler_).then([this, state] { stage_prep(state); });
  });
  stages.push_back([this, state] {
    async::Task<async::Unit> t = async::instrument(
        async::schedule(*scheduler_).then([this, state] { stage_form(state); }),
        [this, state](double seconds) {
          if (!state->done) chain_form_.record(seconds);
        });
    t = async::with_cancellation(
        std::move(t),
        [state] {
          return !state->done &&
                 state->pending->cancelled.load(std::memory_order_relaxed);
        },
        [state](async::Try<async::Unit>&) {
          state->out->result.status = RequestStatus::kCancelled;
          state->out->result.message = "cancelled after formation";
          state->done = true;
        });
    t = async::with_deadline(
        std::move(t),
        [state] {
          return !state->done && state->pending->deadline &&
                 Clock::now() >= *state->pending->deadline;
        },
        [state](async::Try<async::Unit>&) {
          state->out->result.status = RequestStatus::kDeadlineExceeded;
          state->out->result.message = "deadline passed after formation";
          state->done = true;
        });
    return t;
  });
  stages.push_back([this, state] {
    async::Task<async::Unit> t = async::instrument(
        async::schedule(*scheduler_).then([this, state] { stage_solve(state); }),
        [this, state](double seconds) {
          if (!state->done) chain_solve_.record(seconds);
        });
    t = async::with_cancellation(
        std::move(t),
        [state] {
          return !state->done &&
                 state->pending->cancelled.load(std::memory_order_relaxed);
        },
        [state](async::Try<async::Unit>&) {
          state->out->result.status = RequestStatus::kCancelled;
          state->out->result.message = "cancelled after solve";
          state->done = true;
        });
    t = async::with_deadline(
        std::move(t),
        [state] {
          return !state->done && state->pending->deadline &&
                 Clock::now() >= *state->pending->deadline;
        },
        [state](async::Try<async::Unit>&) {
          state->out->result.status = RequestStatus::kDeadlineExceeded;
          state->out->result.message = "deadline passed after solve";
          state->done = true;
        });
    return t;
  });
  stages.push_back([this, state] {
    return async::instrument(
        async::schedule(*scheduler_).then([this, state] { stage_reconstruct(state); }),
        [this, state](double seconds) {
          if (!state->done) chain_reconstruct_.record(seconds);
        });
  });

  return async::sequence(std::move(stages)).then([state] {
    state->out->result.attempts = static_cast<Index>(state->attempt);
    return state->out;
  });
}

// ---------------------------------------------------------------------------
// Stage bodies (verbatim slices of the historical run_attempt).

void Server::run_guarded(const StatePtr& state, const std::function<void()>& body) {
  // Any stage throwing fails this attempt alone -- the server and the rest
  // of the batch carry on; the failure class tells the retry adaptor whether
  // another attempt can help.
  try {
    body();
  } catch (const mea::InvalidMeasurement& e) {
    // The original payload passed admission validation, so the corruption
    // happened in flight (e.g. an injected fault): retrying the pristine
    // copy can succeed.
    state->fail(AttemptFailure::kInvalidInput, RequestStatus::kInvalidInput, e.what());
  } catch (const ContractError& e) {
    // Config/contract bug; retry can't help.
    state->fail(AttemptFailure::kFatal, RequestStatus::kSolverFailed, e.what());
  } catch (const std::bad_alloc&) {
    state->fail(AttemptFailure::kRetryable, RequestStatus::kSolverFailed,
                "allocation failure in the pipeline");
  } catch (const std::exception& e) {
    // NumericalError, fault::InjectedFault, and anything else transient.
    state->fail(AttemptFailure::kRetryable, RequestStatus::kSolverFailed, e.what());
  }
}

void Server::stage_prep(const StatePtr& state) {
  if (state->done) return;
  run_guarded(state, [&] {
    // Retries need the original payload intact, so every attempt runs on a
    // copy of the measurement.
    mea::Measurement measurement = state->pending->request.measurement;
    if (fault::should_fire(fault::Point::kDropMeasurement)) {
      measurement.z(measurement.z.rows() / 2, measurement.z.cols() / 2) =
          std::numeric_limits<Real>::quiet_NaN();
    }
    if (fault::should_fire(fault::Point::kNoiseMeasurement)) {
      Real& entry = measurement.z(0, measurement.z.cols() - 1);
      entry = -entry;  // flips sign: physically impossible, caught on admit
    }
    // Per-attempt auto-masking: recovers entries an injected fault (or the
    // transport) corrupted after admission, the same way admission recovered
    // the original payload's invalid entries.
    Index auto_masked = 0;
    if (state->pending->request.auto_mask_invalid) {
      auto_masked = mea::mask_invalid_entries(measurement);
    }
    state->total_entries = measurement.z.rows() * measurement.z.cols();
    ParametrizeResult& result = state->out->result;
    result.quality.masked_entries = mea::masked_entry_count(measurement);
    result.quality.auto_masked = auto_masked;
    result.quality.masked_fraction =
        state->total_entries > 0
            ? static_cast<Real>(result.quality.masked_entries) /
                  static_cast<Real>(state->total_entries)
            : 0.0;
    state->engine.emplace(std::move(measurement));
  });
}

void Server::stage_form(const StatePtr& state) {
  if (state->done) return;
  run_guarded(state, [&] {
    if (fault::should_fire(fault::Point::kAllocFailure)) throw std::bad_alloc{};
    Stopwatch form_clock;
    core::StrategyOptions form_options = state->pending->request.options;
    if (state->pending->request.solve_method == SolveMethod::kFullSystem) {
      form_options.keep_system = true;  // the full-system solver consumes it
    }
    exec::Executor* executor = state->batch->lease.get();
    state->formation.emplace(
        (executor != nullptr) ? state->engine->form_equations(form_options, *executor)
                              : state->engine->form_equations(form_options));
    ParametrizeResult& result = state->out->result;
    result.form_seconds = form_clock.elapsed_seconds();
    stats_.form.record(result.form_seconds);
    result.equations = state->engine->spec().num_equations();
    result.equation_bytes = state->formation->equation_bytes;
  });
}

void Server::stage_solve(const StatePtr& state) {
  if (state->done) return;
  run_guarded(state, [&] {
    Stopwatch solve_clock;
    solver::InverseResult inverse;
    if (state->pending->request.solve_method == SolveMethod::kFullSystem) {
      // The kernel context hands the solver the batch's leased executor and
      // the shape-shared symbolic analysis, so repeated requests of one
      // shape skip the pattern computation entirely.
      solver::KernelContext kernel_context;
      kernel_context.executor = state->batch->lease.get();
      if (state->pending->request.full_system.use_kernels) {
        kernel_context.symbolic = state->cache->system_symbolic(state->formation->system);
      }
      solver::FullSystemResult full = solver::solve_full_system(
          state->formation->system, state->engine->measurement(),
          state->pending->request.full_system, kernel_context);
      inverse.recovered = std::move(full.recovered);
      inverse.iterations = full.iterations;
      inverse.converged = full.converged;
      inverse.final_misfit = full.final_residual_rms;
      inverse.misfit_history = std::move(full.residual_history);
      inverse.diagnostics = full.diagnostics;
      inverse.termination = full.termination;
      inverse.robust = std::move(full.robust);
    } else {
      inverse = state->engine->recover(state->pending->request.inverse);
    }
    ParametrizeResult& result = state->out->result;
    result.solve_diagnostics = inverse.diagnostics;
    result.solve_seconds = solve_clock.elapsed_seconds();
    stats_.solve.record(result.solve_seconds);
    state->inverse = std::move(inverse);
  });
}

void Server::stage_reconstruct(const StatePtr& state) {
  if (state->done) return;
  run_guarded(state, [&] {
    // Assemble the response; the shape's topology report comes from the
    // FormationCache (one analysis per shape).
    Stopwatch reconstruct_clock;
    ParametrizeResult& result = state->out->result;
    solver::InverseResult& inverse = state->inverse;
    result.topology = state->cache->topology(*state->engine);
    if (state->pending->request.anomaly_threshold) {
      const auto& grid = inverse.recovered;
      for (Index i = 0; i < grid.rows(); ++i) {
        for (Index j = 0; j < grid.cols(); ++j) {
          if (grid.at(i, j) > *state->pending->request.anomaly_threshold) {
            ++result.anomalies;
          }
        }
      }
    }
    // Quality report: robust-estimation and conditioning diagnostics of the
    // solve, then the request's QualityFloor verdict.
    result.quality.outlier_entries =
        static_cast<Index>(inverse.robust.downweighted_entries.size());
    const Index unmasked = state->total_entries - result.quality.masked_entries;
    result.quality.outlier_fraction =
        unmasked > 0 ? static_cast<Real>(result.quality.outlier_entries) /
                           static_cast<Real>(unmasked)
                     : 0.0;
    result.quality.robust_scale = inverse.robust.final_scale;
    result.quality.condition_estimate = inverse.robust.condition_estimate;
    result.quality.numerical_breakdown =
        inverse.termination == solver::TerminationReason::kNumericalBreakdown;
    result.quality.converged = inverse.converged;
    result.inverse = std::move(inverse);
    result.status = RequestStatus::kOk;

    const QualityFloor& floor = state->pending->request.quality_floor;
    if (floor.enabled()) {
      std::ostringstream why;
      if (result.quality.masked_fraction > floor.max_masked_fraction) {
        why << "masked fraction " << result.quality.masked_fraction << " > "
            << floor.max_masked_fraction << "; ";
      }
      if (result.quality.outlier_fraction > floor.max_outlier_fraction) {
        why << "outlier fraction " << result.quality.outlier_fraction << " > "
            << floor.max_outlier_fraction << "; ";
      }
      if (floor.max_condition_estimate > 0.0 &&
          !(result.quality.condition_estimate <= floor.max_condition_estimate)) {
        why << "condition estimate " << result.quality.condition_estimate << " > "
            << floor.max_condition_estimate << "; ";
      }
      if (floor.require_convergence && !result.quality.converged) {
        why << "solver did not converge; ";
      }
      if (floor.demote_on_breakdown && result.quality.numerical_breakdown) {
        why << "numerical breakdown; ";
      }
      const std::string reasons = why.str();
      if (!reasons.empty()) {
        result.quality.degraded = true;
        result.status = RequestStatus::kDegradedResult;
        result.message = "quality floor: " + reasons.substr(0, reasons.size() - 2);
      }
    }
    result.reconstruct_seconds = reconstruct_clock.elapsed_seconds();
    stats_.reconstruct.record(result.reconstruct_seconds);
  });
}

// ---------------------------------------------------------------------------
// Completion / lifecycle.

void Server::complete(const PendingPtr& pending, ParametrizeResult&& result) {
  switch (result.status) {
    case RequestStatus::kOk: stats_.on_completed_ok(); break;
    case RequestStatus::kDeadlineExceeded: stats_.on_deadline_exceeded(); break;
    case RequestStatus::kCancelled: stats_.on_cancelled(); break;
    case RequestStatus::kSolverFailed: stats_.on_solver_failed(); break;
    case RequestStatus::kInvalidInput: stats_.on_invalid_input(); break;
    case RequestStatus::kBreakerOpen: stats_.on_breaker_open(); break;
    case RequestStatus::kDegradedResult: stats_.on_degraded_result(); break;
    case RequestStatus::kRejected: break;  // rejections never reach here
  }
  if (result.has_result()) {
    stats_.on_solve(result.inverse.iterations, result.inverse.converged,
                    result.solve_diagnostics.tikhonov_retries,
                    result.solve_diagnostics.dense_fallbacks,
                    result.solve_diagnostics.cg_iterations);
    stats_.on_quality(result.quality.masked_entries, result.quality.auto_masked,
                      result.quality.outlier_entries, result.quality.numerical_breakdown);
  }
  stats_.end_to_end.record(seconds_between(pending->enqueued_at, Clock::now()));
  if (pending->on_complete) {
    pending->on_complete(std::move(result));
  } else {
    pending->promise.set_value(std::move(result));
  }
  std::lock_guard lock(state_mu_);
  --outstanding_;
  if (outstanding_ == 0) all_done_.notify_all();
}

void Server::drain() {
  bool flush_unstarted = false;
  {
    std::lock_guard lock(state_mu_);
    accepting_ = false;
    flush_unstarted = !started_;
  }
  if (flush_unstarted) {
    // No pipeline exists to serve what's queued; cancel it explicitly so
    // every accepted future still completes exactly once.
    for (PendingPtr& p : queue_.drain_now()) {
      ParametrizeResult r;
      r.status = RequestStatus::kCancelled;
      r.message = "server drained before start";
      complete(p, std::move(r));
    }
  }
  // Expedite pending retry backoffs: a request parked on the timer queue
  // runs its remaining attempts back to back instead of holding drain for
  // the full backoff. In particular a breaker half-open probe waiting out a
  // backoff resolves *now*, deterministically before shutdown tears the
  // pipeline down.
  timers_.flush();
  std::unique_lock lock(state_mu_);
  all_done_.wait(lock, [&] { return outstanding_ == 0; });
}

void Server::shutdown() {
  drain();
  std::thread dispatcher;
  {
    std::lock_guard lock(state_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    dispatcher = std::move(dispatcher_);
  }
  queue_.close();  // wakes the dispatcher; pop_batch returns empty
  if (dispatcher.joinable()) dispatcher.join();
  // One join owns every in-flight chain: drain already flushed the timers,
  // so chains parked in backoff finish promptly, and nothing is torn down
  // under a live continuation.
  scope_.join();
  timers_.stop();
  if (scheduler_) scheduler_->stop();
}

Stats Server::stats() const {
  Stats s = stats_.snapshot(queue_.high_water(), breakers_.opened_events());
  s.breaker_open_shapes = breakers_.open_shapes();
  s.degraded = degraded_.load(std::memory_order_relaxed);
  const core::FormationCache::Stats cache_stats = cache_->stats();
  s.symbolic_cache_hits = cache_stats.symbolic_hits;
  s.symbolic_cache_misses = cache_stats.symbolic_misses;
  return s;
}

StageStats Server::chain_stage_latency(const char* stage) const {
  if (std::strcmp(stage, "form") == 0) return chain_form_.snapshot();
  if (std::strcmp(stage, "solve") == 0) return chain_solve_.snapshot();
  if (std::strcmp(stage, "reconstruct") == 0) return chain_reconstruct_.snapshot();
  return StageStats{};
}

}  // namespace parma::serve

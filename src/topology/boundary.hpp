// Boundary operators and mod-2 homology of a simplicial complex
// (paper Section III-B).
//
// The boundary operator d_k maps the k-chain group C^k to C^{k-1}; over
// GF(2) it is the incidence matrix between k-simplices and their facets.
// From its ranks:
//   rank Z_k (cycles)     = count(k) - rank d_k
//   rank B_k (boundaries) = rank d_{k+1}
//   beta_k                = rank Z_k - rank B_k   (Betti number)
// and d_{k-1} . d_k = 0 (the fundamental identity), which the tests verify.
#pragma once

#include <vector>

#include "topology/gf2_matrix.hpp"
#include "topology/simplicial_complex.hpp"

namespace parma::topology {

/// GF(2) matrix of d_k: rows = (k-1)-simplices, cols = k-simplices, entry 1
/// when the row simplex is a facet of the column simplex. d_0 is the map to
/// the empty complex and is represented as a 0 x count(0) zero matrix.
Gf2Matrix boundary_matrix(const SimplicialComplex& complex, Index k);

/// Ranks of chain, cycle, and boundary groups at one dimension.
struct ChainGroupRanks {
  Index chain_rank = 0;     ///< dim C^k = number of k-simplices
  Index cycle_rank = 0;     ///< dim Z_k = ker d_k
  Index boundary_rank = 0;  ///< dim B_k = im d_{k+1}
  [[nodiscard]] Index betti() const { return cycle_rank - boundary_rank; }
};

ChainGroupRanks chain_group_ranks(const SimplicialComplex& complex, Index k);

/// beta_k of the complex.
Index betti_number(const SimplicialComplex& complex, Index k);

/// All Betti numbers from dimension 0 through dim K.
std::vector<Index> betti_numbers(const SimplicialComplex& complex);

/// Verifies d_{k} . d_{k+1} = 0 for every k (test/diagnostic helper).
bool boundary_squared_is_zero(const SimplicialComplex& complex);

}  // namespace parma::topology

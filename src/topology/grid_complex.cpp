#include "topology/grid_complex.hpp"

#include "common/require.hpp"

namespace parma::topology {
namespace {

Index pow_index(Index base, Index exp) {
  Index out = 1;
  for (Index i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace

WireComplex build_wire_complex(Index num_horizontal, Index num_vertical) {
  PARMA_REQUIRE(num_horizontal >= 1 && num_vertical >= 1, "need at least one wire per axis");
  WireComplex wc;
  const Index m = num_horizontal;
  const Index n = num_vertical;
  wc.num_vertices = 2 * m * n;

  const auto h_joint = [n](Index r, Index c) { return 2 * (r * n + c); };
  const auto v_joint = [n](Index r, Index c) { return 2 * (r * n + c) + 1; };

  auto add_edge = [&wc](Index u, Index v) {
    wc.edges.push_back({u, v});
    wc.complex.insert(Simplex{u, v});
  };

  // Resistor edges: one per crossing, joining the two joints of the crossing.
  for (Index r = 0; r < m; ++r) {
    for (Index c = 0; c < n; ++c) {
      wc.resistor_edges.push_back(static_cast<Index>(wc.edges.size()));
      add_edge(h_joint(r, c), v_joint(r, c));
    }
  }
  // Wire segments along each horizontal wire...
  for (Index r = 0; r < m; ++r) {
    for (Index c = 0; c + 1 < n; ++c) add_edge(h_joint(r, c), h_joint(r, c + 1));
  }
  // ...and along each vertical wire.
  for (Index c = 0; c < n; ++c) {
    for (Index r = 0; r + 1 < m; ++r) add_edge(v_joint(r, c), v_joint(r + 1, c));
  }
  return wc;
}

std::vector<GraphEdge> build_bipartite_graph(Index m, Index n) {
  PARMA_REQUIRE(m >= 1 && n >= 1, "need at least one wire per axis");
  std::vector<GraphEdge> edges;
  edges.reserve(static_cast<std::size_t>(m * n));
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) edges.push_back({i, m + j});
  }
  return edges;
}

LatticeComplex build_lattice_complex(Index n, Index dims) {
  PARMA_REQUIRE(n >= 1, "lattice needs n >= 1");
  PARMA_REQUIRE(dims >= 1 && dims <= 6, "lattice dims in [1, 6]");
  LatticeComplex lc;
  lc.num_vertices = pow_index(n, dims);

  // Mixed-radix vertex id: coordinate d contributes coord[d] * n^d.
  std::vector<Index> stride(static_cast<std::size_t>(dims));
  for (Index d = 0; d < dims; ++d) stride[static_cast<std::size_t>(d)] = pow_index(n, d);

  for (Index v = 0; v < lc.num_vertices; ++v) {
    for (Index d = 0; d < dims; ++d) {
      const Index coord = (v / stride[static_cast<std::size_t>(d)]) % n;
      if (coord + 1 < n) {
        const Index u = v + stride[static_cast<std::size_t>(d)];
        lc.edges.push_back({v, u});
        lc.complex.insert(Simplex{v, u});
      }
    }
  }
  return lc;
}

Index expected_betti1_crossbar(Index m, Index n) { return (m - 1) * (n - 1); }

Index expected_betti1_lattice(Index n, Index dims) {
  const Index vertices = pow_index(n, dims);
  const Index edges = dims * pow_index(n, dims - 1) * (n - 1);
  return edges - vertices + 1;
}

bool satisfies_proposition1(const WireComplex& wc) {
  if (wc.complex.dimension() != 1) return false;
  // By construction the complex is face-closed; check the intersection
  // property on the maximal simplices (edges): any two distinct edges share
  // at most one vertex, and that vertex is a simplex of the complex.
  const std::vector<Simplex> edges = wc.complex.simplices_of_dimension(1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      const Simplex overlap = edges[i].intersect(edges[j]);
      if (overlap.dimension() > 0) return false;  // two edges sharing a segment
      if (!overlap.empty() && !wc.complex.contains(overlap)) return false;
    }
  }
  return true;
}

}  // namespace parma::topology

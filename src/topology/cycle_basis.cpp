#include "topology/cycle_basis.hpp"

#include <algorithm>
#include <queue>

#include "common/require.hpp"

namespace parma::topology {
namespace {

// Disjoint-set union for counting components without a traversal.
class UnionFind {
 public:
  explicit UnionFind(Index n) : parent_(static_cast<std::size_t>(n)) {
    for (Index i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  Index find(Index x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<Index> parent_;
};

}  // namespace

CycleBasis::CycleBasis(Index num_vertices, std::vector<GraphEdge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  PARMA_REQUIRE(num_vertices >= 0, "vertex count must be non-negative");
  for (const auto& e : edges_) {
    PARMA_REQUIRE(e.u >= 0 && e.u < num_vertices && e.v >= 0 && e.v < num_vertices,
                  "edge endpoint out of range");
    PARMA_REQUIRE(e.u != e.v, "self-loops are not simplicial edges");
  }

  // BFS spanning forest; parent pointers let us recover tree paths.
  std::vector<std::vector<std::pair<Index, Index>>> adj(
      static_cast<std::size_t>(num_vertices));  // (neighbor, edge id)
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    adj[static_cast<std::size_t>(edges_[i].u)].emplace_back(edges_[i].v, static_cast<Index>(i));
    adj[static_cast<std::size_t>(edges_[i].v)].emplace_back(edges_[i].u, static_cast<Index>(i));
  }

  std::vector<Index> parent(static_cast<std::size_t>(num_vertices), -1);
  std::vector<Index> parent_edge(static_cast<std::size_t>(num_vertices), -1);
  std::vector<Index> depth(static_cast<std::size_t>(num_vertices), -1);
  std::vector<bool> edge_in_tree(edges_.size(), false);

  for (Index root = 0; root < num_vertices; ++root) {
    if (depth[static_cast<std::size_t>(root)] >= 0) continue;
    ++num_components_;
    depth[static_cast<std::size_t>(root)] = 0;
    std::queue<Index> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
      const Index u = frontier.front();
      frontier.pop();
      for (const auto& [v, eid] : adj[static_cast<std::size_t>(u)]) {
        if (depth[static_cast<std::size_t>(v)] >= 0) continue;
        depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(u)] + 1;
        parent[static_cast<std::size_t>(v)] = u;
        parent_edge[static_cast<std::size_t>(v)] = eid;
        edge_in_tree[static_cast<std::size_t>(eid)] = true;
        tree_edges_.push_back(eid);
        frontier.push(v);
      }
    }
  }

  // Each non-tree edge (u, v) closes the cycle u ~> lca ~> v plus the edge.
  for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
    if (edge_in_tree[eid]) continue;
    Index a = edges_[eid].u;
    Index b = edges_[eid].v;
    std::vector<Index> path_a{a};
    std::vector<Index> path_a_edges;
    std::vector<Index> path_b{b};
    std::vector<Index> path_b_edges;
    while (a != b) {
      if (depth[static_cast<std::size_t>(a)] >= depth[static_cast<std::size_t>(b)]) {
        path_a_edges.push_back(parent_edge[static_cast<std::size_t>(a)]);
        a = parent[static_cast<std::size_t>(a)];
        path_a.push_back(a);
      } else {
        path_b_edges.push_back(parent_edge[static_cast<std::size_t>(b)]);
        b = parent[static_cast<std::size_t>(b)];
        path_b.push_back(b);
      }
    }
    Cycle cycle;
    // u -> ... -> lca (path_a), then lca -> ... -> v reversed (path_b),
    // closed by the non-tree edge.
    cycle.vertices = path_a;
    for (auto it = path_b.rbegin() + 1; it != path_b.rend(); ++it) cycle.vertices.push_back(*it);
    cycle.edge_ids = path_a_edges;
    for (auto it = path_b_edges.rbegin(); it != path_b_edges.rend(); ++it) {
      cycle.edge_ids.push_back(*it);
    }
    cycle.edge_ids.push_back(static_cast<Index>(eid));
    cycles_.push_back(std::move(cycle));
  }
}

Index CycleBasis::cyclomatic_number() const {
  return static_cast<Index>(edges_.size()) - num_vertices_ + num_components_;
}

bool CycleBasis::is_valid_cycle(const Cycle& cycle) const {
  if (cycle.vertices.size() < 3) return false;
  if (cycle.edge_ids.size() != cycle.vertices.size()) return false;
  for (std::size_t i = 0; i < cycle.vertices.size(); ++i) {
    const Index a = cycle.vertices[i];
    const Index b = cycle.vertices[(i + 1) % cycle.vertices.size()];
    const GraphEdge& e = edges_[static_cast<std::size_t>(cycle.edge_ids[i])];
    const bool matches = (e.u == a && e.v == b) || (e.u == b && e.v == a);
    if (!matches) return false;
  }
  return true;
}

Index cyclomatic_number(Index num_vertices, const std::vector<GraphEdge>& edges) {
  UnionFind uf(num_vertices);
  Index components = num_vertices;
  for (const auto& e : edges) {
    if (uf.unite(e.u, e.v)) --components;
  }
  return static_cast<Index>(edges.size()) - num_vertices + components;
}

}  // namespace parma::topology

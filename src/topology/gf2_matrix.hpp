// Dense matrices over GF(2) with bit-packed rows.
//
// Chain groups of a simplicial complex are Z/2 vector spaces (the paper's
// "modulo-2 inclusion" operation); ranks of the boundary operators over GF(2)
// give the cycle/boundary group ranks and hence the Betti numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace parma::topology {

class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(Index rows, Index cols);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  [[nodiscard]] bool get(Index r, Index c) const;
  void set(Index r, Index c, bool value);

  /// row r ^= row s (GF(2) row addition).
  void add_row(Index r, Index s);

  /// Rank via Gaussian elimination on a copy.
  [[nodiscard]] Index rank() const;

  /// Basis of the right null space {x : A x = 0}; each basis vector is a
  /// bool-vector of length cols(). Dimension = cols - rank (rank-nullity).
  [[nodiscard]] std::vector<std::vector<bool>> null_space_basis() const;

  /// C = A * B over GF(2).
  [[nodiscard]] Gf2Matrix multiply(const Gf2Matrix& other) const;

  /// true if every entry is zero.
  [[nodiscard]] bool is_zero() const;

 private:
  static constexpr Index kWordBits = 64;
  [[nodiscard]] std::size_t word_index(Index r, Index c) const {
    return static_cast<std::size_t>(r) * words_per_row_ + static_cast<std::size_t>(c / kWordBits);
  }

  Index rows_ = 0;
  Index cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace parma::topology

// Abstract simplex: a finite set of vertex ids (paper Section III-A).
//
// dim(sigma) = |sigma| - 1; every subset of a simplex is a face and is itself
// a simplex. Vertices are stored sorted and deduplicated, giving simplices
// value semantics and a total order usable as map keys.
#pragma once

#include <compare>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"

namespace parma::topology {

class Simplex {
 public:
  Simplex() = default;

  /// From an arbitrary vertex list; sorts and removes duplicates.
  explicit Simplex(std::vector<Index> vertices);
  Simplex(std::initializer_list<Index> vertices);

  /// Number of vertices minus one; the empty simplex has dimension -1.
  [[nodiscard]] Index dimension() const { return static_cast<Index>(vertices_.size()) - 1; }

  [[nodiscard]] bool empty() const { return vertices_.empty(); }
  [[nodiscard]] std::size_t size() const { return vertices_.size(); }
  [[nodiscard]] const std::vector<Index>& vertices() const { return vertices_; }

  /// All faces of codimension 1 (the (d-1)-faces); the boundary operator's
  /// support. The empty simplex has no faces.
  [[nodiscard]] std::vector<Simplex> facets() const;

  /// Every subset (the full face lattice, 2^|sigma| entries incl. empty set).
  /// Intended for small simplices only (asserts |sigma| <= 20).
  [[nodiscard]] std::vector<Simplex> all_faces() const;

  /// true if `other`'s vertex set is a subset of this simplex's.
  [[nodiscard]] bool has_face(const Simplex& other) const;

  /// Set intersection of vertex sets.
  [[nodiscard]] Simplex intersect(const Simplex& other) const;

  [[nodiscard]] bool contains_vertex(Index v) const;

  friend auto operator<=>(const Simplex&, const Simplex&) = default;
  friend bool operator==(const Simplex&, const Simplex&) = default;

 private:
  std::vector<Index> vertices_;  // sorted, unique
};

std::ostream& operator<<(std::ostream& os, const Simplex& s);

}  // namespace parma::topology

// MEA-to-topology abstractions (paper Section III, Proposition 1).
//
// Three related objects:
//  * the *physical wire complex* of Fig. 1 -- every crossing of horizontal
//    wire r and vertical wire c contributes two joints (one per wire) linked
//    by the resistor R_rc, and consecutive joints along a wire are linked by
//    ideal wire segments. This is the 1-dimensional abstract simplicial
//    complex Proposition 1 talks about;
//  * the *electrical bipartite graph* K_{m,n} -- with ideal wires each wire
//    collapses to a single node, resistors become edges (Fig. 2 abstraction);
//  * *k-dimensional lattice complexes* for the higher-dimensional MEAs of
//    Section IV-B.
// All three have first Betti number (m-1)(n-1) (or its k-dim analogue), the
// quantity the paper uses to size the fine-grained parallelism.
#pragma once

#include <vector>

#include "topology/cycle_basis.hpp"
#include "topology/simplicial_complex.hpp"

namespace parma::topology {

/// Physical crossbar complex of an m x n MEA (m horizontal, n vertical wires).
/// Vertex ids: joint on horizontal wire r at column c -> 2*(r*n + c);
///             joint on vertical wire c at row r      -> 2*(r*n + c) + 1.
/// (For the 3x3 device of Fig. 1 this yields 18 joints as in the paper.)
struct WireComplex {
  SimplicialComplex complex;
  std::vector<GraphEdge> edges;       ///< 1-simplices in insertion order
  std::vector<Index> resistor_edges;  ///< indices into `edges` that are resistors
  Index num_vertices = 0;
};

WireComplex build_wire_complex(Index num_horizontal, Index num_vertical);

/// Electrical abstraction: complete bipartite graph K_{m,n}. Node ids:
/// horizontal wire i -> i (0-based); vertical wire j -> m + j.
/// Edge order: (i, j) -> i*n + j, matching the R_ij layout.
std::vector<GraphEdge> build_bipartite_graph(Index m, Index n);

/// k-dimensional lattice complex: vertices are points of an n^k grid, edges
/// join lattice neighbors along each axis.
struct LatticeComplex {
  SimplicialComplex complex;
  std::vector<GraphEdge> edges;
  Index num_vertices = 0;
};

LatticeComplex build_lattice_complex(Index n, Index dims);

/// Closed-form first Betti number of the m x n structures above:
/// (m-1) * (n-1).
Index expected_betti1_crossbar(Index m, Index n);

/// Closed-form beta_1 of the n^k lattice: k*n^(k-1)*(n-1) - n^k + 1.
Index expected_betti1_lattice(Index n, Index dims);

/// Proposition 1 checks for a wire complex: dimension == 1, and pairwise
/// simplex intersections are faces of both (always true by construction;
/// exposed so tests can assert the proposition on concrete devices).
bool satisfies_proposition1(const WireComplex& wc);

}  // namespace parma::topology

#include "topology/gf2_matrix.hpp"

#include "common/require.hpp"

namespace parma::topology {

Gf2Matrix::Gf2Matrix(Index rows, Index cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_(static_cast<std::size_t>((cols + kWordBits - 1) / kWordBits)),
      words_(static_cast<std::size_t>(rows) * words_per_row_, 0) {
  PARMA_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

bool Gf2Matrix::get(Index r, Index c) const {
  PARMA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return (words_[word_index(r, c)] >> (c % kWordBits)) & 1U;
}

void Gf2Matrix::set(Index r, Index c, bool value) {
  PARMA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const std::uint64_t mask = std::uint64_t{1} << (c % kWordBits);
  if (value) {
    words_[word_index(r, c)] |= mask;
  } else {
    words_[word_index(r, c)] &= ~mask;
  }
}

void Gf2Matrix::add_row(Index r, Index s) {
  PARMA_REQUIRE(r >= 0 && r < rows_ && s >= 0 && s < rows_, "row index out of range");
  auto* dst = words_.data() + static_cast<std::size_t>(r) * words_per_row_;
  const auto* src = words_.data() + static_cast<std::size_t>(s) * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_; ++w) dst[w] ^= src[w];
}

Index Gf2Matrix::rank() const {
  Gf2Matrix a = *this;
  Index rank = 0;
  for (Index col = 0; col < a.cols_ && rank < a.rows_; ++col) {
    // Find a pivot row at or below `rank` with a 1 in this column.
    Index pivot = -1;
    for (Index r = rank; r < a.rows_; ++r) {
      if (a.get(r, col)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != rank) {
      for (std::size_t w = 0; w < a.words_per_row_; ++w) {
        std::swap(a.words_[static_cast<std::size_t>(pivot) * a.words_per_row_ + w],
                  a.words_[static_cast<std::size_t>(rank) * a.words_per_row_ + w]);
      }
    }
    for (Index r = 0; r < a.rows_; ++r) {
      if (r != rank && a.get(r, col)) a.add_row(r, rank);
    }
    ++rank;
  }
  return rank;
}

std::vector<std::vector<bool>> Gf2Matrix::null_space_basis() const {
  // Reduce to RREF while remembering pivot columns, then read off one basis
  // vector per free column.
  Gf2Matrix a = *this;
  std::vector<Index> pivot_col_of_row;
  std::vector<bool> is_pivot_col(static_cast<std::size_t>(cols_), false);
  Index rank = 0;
  for (Index col = 0; col < a.cols_ && rank < a.rows_; ++col) {
    Index pivot = -1;
    for (Index r = rank; r < a.rows_; ++r) {
      if (a.get(r, col)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != rank) {
      for (std::size_t w = 0; w < a.words_per_row_; ++w) {
        std::swap(a.words_[static_cast<std::size_t>(pivot) * a.words_per_row_ + w],
                  a.words_[static_cast<std::size_t>(rank) * a.words_per_row_ + w]);
      }
    }
    for (Index r = 0; r < a.rows_; ++r) {
      if (r != rank && a.get(r, col)) a.add_row(r, rank);
    }
    pivot_col_of_row.push_back(col);
    is_pivot_col[static_cast<std::size_t>(col)] = true;
    ++rank;
  }

  std::vector<std::vector<bool>> basis;
  for (Index free_col = 0; free_col < cols_; ++free_col) {
    if (is_pivot_col[static_cast<std::size_t>(free_col)]) continue;
    std::vector<bool> x(static_cast<std::size_t>(cols_), false);
    x[static_cast<std::size_t>(free_col)] = true;
    // Back-substitute: pivot variable r equals the free column's coefficient.
    for (Index r = 0; r < rank; ++r) {
      if (a.get(r, free_col)) x[static_cast<std::size_t>(pivot_col_of_row[static_cast<std::size_t>(r)])] = true;
    }
    basis.push_back(std::move(x));
  }
  return basis;
}

Gf2Matrix Gf2Matrix::multiply(const Gf2Matrix& other) const {
  PARMA_REQUIRE(cols_ == other.rows_, "GF(2) matmul: inner dimensions differ");
  Gf2Matrix out(rows_, other.cols_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = 0; k < cols_; ++k) {
      if (!get(i, k)) continue;
      // out.row(i) ^= other.row(k)
      auto* dst = out.words_.data() + static_cast<std::size_t>(i) * out.words_per_row_;
      const auto* src = other.words_.data() + static_cast<std::size_t>(k) * other.words_per_row_;
      for (std::size_t w = 0; w < out.words_per_row_; ++w) dst[w] ^= src[w];
    }
  }
  return out;
}

bool Gf2Matrix::is_zero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

}  // namespace parma::topology

#include "topology/simplex.hpp"

#include <algorithm>
#include <ostream>

#include "common/require.hpp"

namespace parma::topology {

Simplex::Simplex(std::vector<Index> vertices) : vertices_(std::move(vertices)) {
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()), vertices_.end());
}

Simplex::Simplex(std::initializer_list<Index> vertices)
    : Simplex(std::vector<Index>(vertices)) {}

std::vector<Simplex> Simplex::facets() const {
  std::vector<Simplex> out;
  if (vertices_.empty()) return out;
  out.reserve(vertices_.size());
  for (std::size_t skip = 0; skip < vertices_.size(); ++skip) {
    std::vector<Index> face;
    face.reserve(vertices_.size() - 1);
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      if (i != skip) face.push_back(vertices_[i]);
    }
    out.emplace_back(std::move(face));
  }
  return out;
}

std::vector<Simplex> Simplex::all_faces() const {
  PARMA_REQUIRE(vertices_.size() <= 20, "face lattice too large to enumerate");
  const std::size_t count = std::size_t{1} << vertices_.size();
  std::vector<Simplex> out;
  out.reserve(count);
  for (std::size_t mask = 0; mask < count; ++mask) {
    std::vector<Index> sub;
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      if (mask & (std::size_t{1} << i)) sub.push_back(vertices_[i]);
    }
    out.emplace_back(std::move(sub));
  }
  return out;
}

bool Simplex::has_face(const Simplex& other) const {
  return std::includes(vertices_.begin(), vertices_.end(), other.vertices_.begin(),
                       other.vertices_.end());
}

Simplex Simplex::intersect(const Simplex& other) const {
  std::vector<Index> out;
  std::set_intersection(vertices_.begin(), vertices_.end(), other.vertices_.begin(),
                        other.vertices_.end(), std::back_inserter(out));
  return Simplex(std::move(out));
}

bool Simplex::contains_vertex(Index v) const {
  return std::binary_search(vertices_.begin(), vertices_.end(), v);
}

std::ostream& operator<<(std::ostream& os, const Simplex& s) {
  os << '{';
  for (std::size_t i = 0; i < s.vertices().size(); ++i) {
    if (i) os << ',';
    os << s.vertices()[i];
  }
  return os << '}';
}

}  // namespace parma::topology

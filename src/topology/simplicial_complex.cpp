#include "topology/simplicial_complex.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace parma::topology {

void SimplicialComplex::insert(const Simplex& s) {
  if (s.empty()) return;
  if (simplices_.contains(s)) return;
  // Insert the simplex and recursively its facets; small dimensions in MEA
  // work keep this cheap (closure of an edge is 3 simplices).
  simplices_.insert(s);
  for (const Simplex& f : s.facets()) insert(f);
}

void SimplicialComplex::insert_all(const std::vector<Simplex>& simplices) {
  for (const Simplex& s : simplices) insert(s);
}

bool SimplicialComplex::contains(const Simplex& s) const { return simplices_.contains(s); }

Index SimplicialComplex::dimension() const {
  Index dim = -1;
  for (const Simplex& s : simplices_) dim = std::max(dim, s.dimension());
  return dim;
}

std::vector<Simplex> SimplicialComplex::simplices_of_dimension(Index k) const {
  std::vector<Simplex> out;
  for (const Simplex& s : simplices_) {
    if (s.dimension() == k) out.push_back(s);
  }
  return out;  // std::set iteration is already sorted
}

Index SimplicialComplex::count(Index k) const {
  Index c = 0;
  for (const Simplex& s : simplices_) {
    if (s.dimension() == k) ++c;
  }
  return c;
}

Index SimplicialComplex::total_count() const { return static_cast<Index>(simplices_.size()); }

Index SimplicialComplex::euler_characteristic() const {
  Index chi = 0;
  for (const Simplex& s : simplices_) {
    chi += (s.dimension() % 2 == 0) ? 1 : -1;
  }
  return chi;
}

bool SimplicialComplex::soup_is_valid_complex(const std::vector<Simplex>& soup) {
  std::set<Simplex> listed(soup.begin(), soup.end());
  // Closed under faces?
  for (const Simplex& s : soup) {
    for (const Simplex& f : s.facets()) {
      if (!f.empty() && !listed.contains(f)) return false;
    }
  }
  // Pairwise intersections must be faces of both (the empty intersection is
  // vacuously a face). This is the property Fig. 3 shows can fail.
  for (auto it = listed.begin(); it != listed.end(); ++it) {
    for (auto jt = std::next(it); jt != listed.end(); ++jt) {
      const Simplex overlap = it->intersect(*jt);
      if (overlap.empty()) continue;
      if (!listed.contains(overlap)) return false;
    }
  }
  return true;
}

}  // namespace parma::topology

// Abstract simplicial complex (paper Section III-A).
//
// A complex K is a family of simplices closed under taking faces, such that
// the intersection of any two members is a face of both. Insertion closes
// under faces automatically, so a SimplicialComplex is valid by construction;
// `would_violate_intersection_property` exposes the Fig. 3 failure mode
// (two triangles glued along a segment that is not an edge of either) as a
// queryable predicate for polyhedra given as raw simplex soup.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "topology/simplex.hpp"

namespace parma::topology {

class SimplicialComplex {
 public:
  SimplicialComplex() = default;

  /// Inserts `s` and all of its faces (excluding the empty simplex).
  void insert(const Simplex& s);

  /// Inserts many simplices.
  void insert_all(const std::vector<Simplex>& simplices);

  [[nodiscard]] bool contains(const Simplex& s) const;

  /// dim K = max dim sigma over sigma in K; -1 for the empty complex.
  [[nodiscard]] Index dimension() const;

  /// All simplices of dimension k, sorted (stable order for operators).
  [[nodiscard]] std::vector<Simplex> simplices_of_dimension(Index k) const;

  /// Number of k-simplices.
  [[nodiscard]] Index count(Index k) const;

  /// Total number of simplices (all dimensions, excluding the empty simplex).
  [[nodiscard]] Index total_count() const;

  /// Euler characteristic: sum over k of (-1)^k * count(k).
  [[nodiscard]] Index euler_characteristic() const;

  /// Checks whether adding raw simplex set `soup` (WITHOUT face closure, as a
  /// polyhedron given by its maximal cells plus whatever faces the caller
  /// listed) violates the simplicial intersection property of Section III-A:
  /// returns a witness pair whose intersection is not listed, if any.
  static bool soup_is_valid_complex(const std::vector<Simplex>& soup);

  [[nodiscard]] const std::set<Simplex>& simplices() const { return simplices_; }

 private:
  std::set<Simplex> simplices_;
};

}  // namespace parma::topology

// Fundamental cycle basis of an undirected graph (Maxwell's cyclomatic
// number, paper Section II-A).
//
// A spanning forest is grown by BFS; every non-tree edge closes exactly one
// independent cycle, giving |E| - |V| + #components independent cycles. For
// the MEA wire graph these cycles are the independent Kirchhoff voltage loops
// that Parma parallelizes over, and their count equals beta_1 of the
// 1-dimensional complex (verified in tests against the GF(2) homology path).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace parma::topology {

/// Undirected edge between graph vertices (ids in [0, num_vertices)).
struct GraphEdge {
  Index u = 0;
  Index v = 0;
};

/// One independent cycle, as the sequence of vertices it visits (closed:
/// front() is revisited after back()), plus the edge ids it uses.
struct Cycle {
  std::vector<Index> vertices;
  std::vector<Index> edge_ids;
};

class CycleBasis {
 public:
  CycleBasis(Index num_vertices, std::vector<GraphEdge> edges);

  /// |E| - |V| + #components: the number of independent cycles.
  [[nodiscard]] Index cyclomatic_number() const;

  [[nodiscard]] Index num_components() const { return num_components_; }

  /// The fundamental cycles; size() == cyclomatic_number().
  [[nodiscard]] const std::vector<Cycle>& cycles() const { return cycles_; }

  /// Edge ids of the BFS spanning forest.
  [[nodiscard]] const std::vector<Index>& tree_edges() const { return tree_edges_; }

  [[nodiscard]] Index num_vertices() const { return num_vertices_; }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Verifies a cycle is closed and alternates along real edges.
  [[nodiscard]] bool is_valid_cycle(const Cycle& cycle) const;

 private:
  Index num_vertices_ = 0;
  std::vector<GraphEdge> edges_;
  std::vector<Index> tree_edges_;
  std::vector<Cycle> cycles_;
  Index num_components_ = 0;
};

/// Convenience: cyclomatic number |E| - |V| + #components without
/// materializing the cycles.
Index cyclomatic_number(Index num_vertices, const std::vector<GraphEdge>& edges);

}  // namespace parma::topology

#include "topology/boundary.hpp"

#include <map>

#include "common/require.hpp"

namespace parma::topology {

Gf2Matrix boundary_matrix(const SimplicialComplex& complex, Index k) {
  PARMA_REQUIRE(k >= 0, "boundary dimension must be non-negative");
  const std::vector<Simplex> k_simplices = complex.simplices_of_dimension(k);
  if (k == 0) {
    // d_0 maps vertices to the (-1)-chain group, which is trivial here
    // (reduced homology is not used by the paper).
    return Gf2Matrix(0, static_cast<Index>(k_simplices.size()));
  }
  const std::vector<Simplex> faces = complex.simplices_of_dimension(k - 1);
  std::map<Simplex, Index> face_index;
  for (std::size_t i = 0; i < faces.size(); ++i) face_index[faces[i]] = static_cast<Index>(i);

  Gf2Matrix d(static_cast<Index>(faces.size()), static_cast<Index>(k_simplices.size()));
  for (std::size_t col = 0; col < k_simplices.size(); ++col) {
    for (const Simplex& facet : k_simplices[col].facets()) {
      const auto it = face_index.find(facet);
      PARMA_REQUIRE(it != face_index.end(), "complex not closed under faces");
      d.set(it->second, static_cast<Index>(col), true);
    }
  }
  return d;
}

ChainGroupRanks chain_group_ranks(const SimplicialComplex& complex, Index k) {
  ChainGroupRanks ranks;
  ranks.chain_rank = complex.count(k);
  const Gf2Matrix dk = boundary_matrix(complex, k);
  ranks.cycle_rank = ranks.chain_rank - dk.rank();
  if (k + 1 <= complex.dimension()) {
    ranks.boundary_rank = boundary_matrix(complex, k + 1).rank();
  }
  return ranks;
}

Index betti_number(const SimplicialComplex& complex, Index k) {
  return chain_group_ranks(complex, k).betti();
}

std::vector<Index> betti_numbers(const SimplicialComplex& complex) {
  std::vector<Index> out;
  for (Index k = 0; k <= complex.dimension(); ++k) out.push_back(betti_number(complex, k));
  return out;
}

bool boundary_squared_is_zero(const SimplicialComplex& complex) {
  for (Index k = 1; k + 1 <= complex.dimension() + 1; ++k) {
    const Gf2Matrix dk = boundary_matrix(complex, k);
    const Gf2Matrix dk1 = boundary_matrix(complex, k + 1);
    if (dk1.rows() == 0 || dk.rows() == 0) continue;
    if (!dk.multiply(dk1).is_zero()) return false;
  }
  return true;
}

}  // namespace parma::topology

// parma::async::Event -- a readiness event as a sender source.
//
// An Event<T> bridges an external completion (an I/O readiness callback, a
// transport frame, a hardware interrupt surrogate) into the continuation
// core: fire() delivers the outcome, task() is a cold one-shot sender that
// completes with it. The two halves are fully order-independent -- firing
// before the task is started stashes the result; starting before the fire
// parks the continuation -- and each may happen on any thread, so an I/O
// loop can hand a decoded frame to the serving pipeline as "just another
// sender" without knowing anything about schedulers:
//
//   auto event = std::make_shared<async::Event<Response>>();
//   scope.spawn(event->task().then([conn](Response r) { conn->send(r); }));
//   io_loop.on_complete([event](Response r) { event->fire_value(std::move(r)); });
//
// Exactly one fire() and exactly one task() start per event; a second of
// either is a contract violation. The continuation runs inline on the firing
// thread (append .via(scheduler) to hop).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "async/task.hpp"
#include "common/require.hpp"

namespace parma::async {

template <typename T>
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  Event(Event&&) noexcept = default;
  Event& operator=(Event&&) noexcept = default;

  /// Delivers the outcome. Runs the parked continuation inline when the task
  /// was already started; stashes the result otherwise. Thread-safe against
  /// a concurrent task() start.
  void fire(Try<T> outcome) {
    typename Task<T>::Continuation run;
    {
      std::lock_guard lock(state_->mu);
      PARMA_REQUIRE(!state_->fired, "Event fired twice");
      state_->fired = true;
      if (state_->continuation) {
        run = std::move(*state_->continuation);
        state_->continuation.reset();
      } else {
        state_->outcome = std::move(outcome);
        return;
      }
    }
    run(std::move(outcome));
  }

  void fire_value(T value) { fire(Try<T>::from_value(std::move(value))); }
  void fire_error(std::exception_ptr error) { fire(Try<T>::from_error(std::move(error))); }

  /// True once fire() has happened (diagnostics; inherently racy as a guard).
  [[nodiscard]] bool fired() const {
    std::lock_guard lock(state_->mu);
    return state_->fired;
  }

  /// The sender half. Cold and single-shot: the returned task completes with
  /// whatever fire() delivered (already or eventually). The Event object
  /// itself may be destroyed once both halves are in motion -- the shared
  /// state lives as long as either side needs it.
  [[nodiscard]] Task<T> task() {
    auto state = state_;
    return Task<T>([state](typename Task<T>::Continuation c) {
      std::optional<Try<T>> ready;
      {
        std::lock_guard lock(state->mu);
        PARMA_REQUIRE(!state->started, "Event task started twice");
        state->started = true;
        if (state->outcome) {
          ready = std::move(state->outcome);
          state->outcome.reset();
        } else {
          state->continuation = std::move(c);
          return;
        }
      }
      c(std::move(*ready));
    });
  }

 private:
  struct State {
    mutable std::mutex mu;
    bool fired = false;
    bool started = false;
    std::optional<Try<T>> outcome;
    std::optional<typename Task<T>::Continuation> continuation;
  };
  std::shared_ptr<State> state_;
};

}  // namespace parma::async

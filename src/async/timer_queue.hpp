// parma::async::TimerQueue -- deferred continuations for backoff waits.
//
// One timer thread holds a min-heap of (due time, callback) entries and
// fires each callback at its due time. Callbacks run on the timer thread
// and must be cheap -- post the real continuation to a Scheduler.
//
// The queue is the seam that makes drain deterministic: flush() fires every
// pending entry immediately (callback sees flushed = true) and latches the
// queue into expedited mode, where later schedule_after() calls also fire
// at once. async_scope::join relies on this: a request sleeping in a 10 s
// retry backoff must not hold shutdown hostage for 10 s, and a half-open
// breaker probe parked behind such a backoff must resolve before the
// workers are torn down (see server.cpp drain()).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace parma::async {

class TimerQueue {
 public:
  using Clock = std::chrono::steady_clock;
  /// `flushed` is false for a natural expiry, true when the wait was cut
  /// short by flush() (or scheduled while already expedited).
  using Callback = std::function<void(bool flushed)>;

  TimerQueue();
  ~TimerQueue();  // stop()

  TimerQueue(const TimerQueue&) = delete;
  TimerQueue& operator=(const TimerQueue&) = delete;

  /// Runs `cb` on the timer thread once `delay` has elapsed. A non-positive
  /// delay, or a queue in expedited mode, fires on the timer thread at the
  /// next wakeup (never inline on the caller).
  void schedule_after(std::chrono::microseconds delay, Callback cb);

  /// Fires every pending entry now (flushed = true) and latches expedited
  /// mode; subsequent schedules also fire immediately. Returns once the
  /// *queue* is empty -- callbacks may still be running on the timer thread.
  void flush();

  /// Leaves expedited mode (tests; the server never resumes after drain).
  void resume();

  /// Entries scheduled but not yet fired.
  [[nodiscard]] std::size_t pending() const;

  /// Total callbacks fired, and how many of those were flushed.
  [[nodiscard]] std::uint64_t fired() const;
  [[nodiscard]] std::uint64_t flushed() const;

  /// Fires everything pending, then joins the timer thread. Idempotent.
  void stop();

 private:
  struct Entry {
    Clock::time_point due;
    std::uint64_t seq;  ///< FIFO tiebreak for equal due times
    Callback cb;
    bool flushed;
    bool operator>(const Entry& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  void run();

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t flushed_fires_ = 0;
  bool expedite_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace parma::async

// parma::async::TimerQueue -- deferred continuations for backoff waits.
//
// One timer thread holds a min-heap of (due time, callback) entries and
// fires each callback at its due time. Callbacks run on the timer thread
// and must be cheap -- post the real continuation to a Scheduler.
//
// The queue is the seam that makes drain deterministic: flush() fires every
// pending entry immediately (callback sees flushed = true) and latches the
// queue into expedited mode, where later schedule_after() calls also fire
// at once. async_scope::join relies on this: a request sleeping in a 10 s
// retry backoff must not hold shutdown hostage for 10 s, and a half-open
// breaker probe parked behind such a backoff must resolve before the
// workers are torn down (see server.cpp drain()).
//
// Periodic timers (schedule_every) repeat until cancelled; they drive
// maintenance ticks like the listener's connection-hygiene sweep. Periodics
// are deliberately dropped -- not fired -- under flush()/expedited mode and
// at stop(): a drain must not race a maintenance pass, and "fire every
// pending entry" means the one-shot continuations, not an infinite tick
// stream.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

namespace parma::async {

class TimerQueue {
 public:
  using Clock = std::chrono::steady_clock;
  /// `flushed` is false for a natural expiry, true when the wait was cut
  /// short by flush() (or scheduled while already expedited).
  using Callback = std::function<void(bool flushed)>;

  TimerQueue();
  ~TimerQueue();  // stop()

  TimerQueue(const TimerQueue&) = delete;
  TimerQueue& operator=(const TimerQueue&) = delete;

  /// Handle for cancelling a periodic timer. Never 0.
  using TimerId = std::uint64_t;

  /// Runs `cb` on the timer thread once `delay` has elapsed. A non-positive
  /// delay, or a queue in expedited mode, fires on the timer thread at the
  /// next wakeup (never inline on the caller).
  void schedule_after(std::chrono::microseconds delay, Callback cb);

  /// Runs `cb` on the timer thread every `period` (first fire one period
  /// from now) until cancelled. The next fire is scheduled after `cb`
  /// returns -- a slow callback delays the cadence rather than stacking up.
  /// Periodics do not fire under flush()/expedited mode or stop(); they are
  /// dropped.
  TimerId schedule_every(std::chrono::microseconds period, std::function<void()> cb);

  /// Stops a periodic timer. Safe for an already-cancelled or dropped id;
  /// safe from the timer thread itself (a periodic may cancel itself).
  void cancel(TimerId id);

  /// Fires every pending entry now (flushed = true) and latches expedited
  /// mode; subsequent schedules also fire immediately. Returns once the
  /// *queue* is empty -- callbacks may still be running on the timer thread.
  void flush();

  /// Leaves expedited mode (tests; the server never resumes after drain).
  void resume();

  /// Entries scheduled but not yet fired.
  [[nodiscard]] std::size_t pending() const;

  /// Total callbacks fired, and how many of those were flushed.
  [[nodiscard]] std::uint64_t fired() const;
  [[nodiscard]] std::uint64_t flushed() const;

  /// Fires everything pending, then joins the timer thread. Idempotent.
  void stop();

 private:
  struct Entry {
    Clock::time_point due;
    std::uint64_t seq;  ///< FIFO tiebreak for equal due times
    Callback cb;
    bool flushed;
    TimerId periodic_id = 0;  ///< 0 = one-shot; else the periodics_ key
    bool operator>(const Entry& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  /// A live periodic timer; its heap entries carry only the id, so cancel()
  /// is an O(1) map erase and stale heap entries fall through harmlessly.
  struct Periodic {
    std::chrono::microseconds period;
    std::function<void()> cb;
  };

  void run();

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> entries_;
  std::unordered_map<TimerId, Periodic> periodics_;
  std::uint64_t next_seq_ = 0;
  TimerId next_timer_id_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t flushed_fires_ = 0;
  bool expedite_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace parma::async

#include "async/scheduler.hpp"

#include <utility>

#include "common/require.hpp"

namespace parma::async {

Scheduler::Scheduler(Index threads) {
  PARMA_REQUIRE(threads >= 1, "Scheduler needs at least one thread");
  threads_.reserve(static_cast<std::size_t>(threads));
  for (Index i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::post(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    if (!stopping_) {
      queue_.push_back(std::move(task));
      lock.unlock();
      ready_.notify_one();
      return;
    }
    // Stopped: run inline (see header). The counter still ticks so
    // diagnostics account for every executed continuation.
    ++executed_;
  }
  task();
}

void Scheduler::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Idempotent; the first call already joined (or is joining) the pool.
    }
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Scheduler::executed() const {
  std::lock_guard lock(mu_);
  return executed_;
}

void Scheduler::run() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++executed_;
    }
    task();
  }
}

}  // namespace parma::async

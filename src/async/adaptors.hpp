// Post-stage gates and instrumentation for Task chains.
//
// A "gate" runs after the wrapped task completes: if the predicate holds, a
// mutator rewrites the outcome in place (e.g. stamping kDeadlineExceeded
// over an otherwise-successful formation). Gates are how the serving
// pipeline keeps its historical cancel/deadline checkpoints -- after
// formation and after solve -- at exactly the same points in the chain,
// with exactly the same messages, as the old blocking loop.
#pragma once

#include <chrono>
#include <type_traits>
#include <functional>
#include <memory>
#include <utility>

#include "async/task.hpp"

namespace parma::async {

/// After `task` completes, if `triggered()` is true run `mutate` on the
/// outcome. Errors pass through untouched -- gates refine successes.
template <typename T>
Task<T> gate(Task<T> task, std::function<bool()> triggered,
             std::type_identity_t<std::function<void(Try<T>&)>> mutate) {
  auto boxed = std::make_shared<Task<T>>(std::move(task));
  return Task<T>([boxed, triggered = std::move(triggered), mutate = std::move(mutate)](
                     typename Task<T>::Continuation c) mutable {
    std::move(*boxed).start(
        [triggered = std::move(triggered), mutate = std::move(mutate),
         c = std::move(c)](Try<T> outcome) mutable {
          if (outcome.ok() && triggered()) mutate(outcome);
          c(std::move(outcome));
        });
  });
}

/// Deadline checkpoint: `expired` typically compares a request deadline
/// against Clock::now(); `mutate` stamps the timeout outcome.
template <typename T>
Task<T> with_deadline(Task<T> task, std::function<bool()> expired,
                      std::type_identity_t<std::function<void(Try<T>&)>> mutate) {
  return gate(std::move(task), std::move(expired), std::move(mutate));
}

/// Cancellation checkpoint: `cancelled` typically reads the request's
/// atomic cancel flag.
template <typename T>
Task<T> with_cancellation(Task<T> task, std::function<bool()> cancelled,
                          std::type_identity_t<std::function<void(Try<T>&)>> mutate) {
  return gate(std::move(task), std::move(cancelled), std::move(mutate));
}

/// Measures wall time from start() to completion and hands the seconds to
/// `sink` (before the downstream continuation runs). The sink decides what
/// to do with it -- the server feeds per-stage latency histograms and skips
/// samples for attempts that short-circuited.
template <typename T>
Task<T> instrument(Task<T> task, std::function<void(double seconds)> sink) {
  auto boxed = std::make_shared<Task<T>>(std::move(task));
  return Task<T>([boxed, sink = std::move(sink)](typename Task<T>::Continuation c) mutable {
    const auto begin = std::chrono::steady_clock::now();
    std::move(*boxed).start(
        [begin, sink = std::move(sink), c = std::move(c)](Try<T> outcome) mutable {
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - begin;
          sink(elapsed.count());
          c(std::move(outcome));
        });
  });
}

}  // namespace parma::async

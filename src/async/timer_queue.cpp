#include "async/timer_queue.hpp"

#include <utility>

namespace parma::async {

TimerQueue::TimerQueue() : thread_([this] { run(); }) {}

TimerQueue::~TimerQueue() { stop(); }

void TimerQueue::schedule_after(std::chrono::microseconds delay, Callback cb) {
  {
    std::lock_guard lock(mu_);
    Entry entry;
    entry.seq = next_seq_++;
    entry.cb = std::move(cb);
    if (expedite_ || delay.count() <= 0) {
      entry.due = Clock::time_point::min();  // ahead of everything pending
      entry.flushed = expedite_;
    } else {
      entry.due = Clock::now() + delay;
      entry.flushed = false;
    }
    entries_.push(std::move(entry));
  }
  wake_.notify_all();
}

TimerQueue::TimerId TimerQueue::schedule_every(std::chrono::microseconds period,
                                               std::function<void()> cb) {
  TimerId id;
  {
    std::lock_guard lock(mu_);
    id = next_timer_id_++;
    if (expedite_ || stopping_) return id;  // drained queues run no maintenance
    periodics_.emplace(id, Periodic{period, std::move(cb)});
    Entry entry;
    entry.due = Clock::now() + period;
    entry.seq = next_seq_++;
    entry.flushed = false;
    entry.periodic_id = id;
    entries_.push(std::move(entry));
  }
  wake_.notify_all();
  return id;
}

void TimerQueue::cancel(TimerId id) {
  std::lock_guard lock(mu_);
  // The heap entry (if any) stays; run() drops it when the lookup misses.
  periodics_.erase(id);
}

void TimerQueue::flush() {
  {
    std::lock_guard lock(mu_);
    expedite_ = true;
    // Re-stamp everything pending as due immediately. priority_queue has no
    // decrease-key, so rebuild; the heap is small (in-flight backoffs only).
    std::vector<Entry> pending;
    pending.reserve(entries_.size());
    while (!entries_.empty()) {
      Entry e = entries_.top();
      entries_.pop();
      e.due = Clock::time_point::min();
      e.flushed = true;
      pending.push_back(std::move(e));
    }
    for (Entry& e : pending) entries_.push(std::move(e));
  }
  wake_.notify_all();
}

void TimerQueue::resume() {
  std::lock_guard lock(mu_);
  expedite_ = false;
}

std::size_t TimerQueue::pending() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::uint64_t TimerQueue::fired() const {
  std::lock_guard lock(mu_);
  return fired_;
}

std::uint64_t TimerQueue::flushed() const {
  std::lock_guard lock(mu_);
  return flushed_fires_;
}

void TimerQueue::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    expedite_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimerQueue::run() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (entries_.empty()) {
      if (stopping_) return;
      wake_.wait(lock, [&] { return stopping_ || !entries_.empty(); });
      continue;
    }
    const Clock::time_point due = entries_.top().due;
    const Clock::time_point now = Clock::now();
    if (due > now && !expedite_) {
      // Sleep until the front entry is due or something changes the heap.
      wake_.wait_until(lock, due);
      continue;
    }
    Entry entry = std::move(const_cast<Entry&>(entries_.top()));
    entries_.pop();
    const bool flushed = entry.flushed || (expedite_ && due > now);
    if (entry.periodic_id != 0) {
      const auto it = periodics_.find(entry.periodic_id);
      if (it == periodics_.end()) continue;  // cancelled; stale heap entry
      if (flushed || expedite_ || stopping_) {
        // Drain semantics: maintenance ticks die, they never fire early.
        periodics_.erase(it);
        continue;
      }
      // Copy out: the callback may cancel itself (or anything else).
      const std::function<void()> cb = it->second.cb;
      const std::chrono::microseconds period = it->second.period;
      ++fired_;
      lock.unlock();
      cb();
      lock.lock();
      if (!expedite_ && !stopping_ && periodics_.count(entry.periodic_id) != 0) {
        Entry next;
        next.due = Clock::now() + period;
        next.seq = next_seq_++;
        next.flushed = false;
        next.periodic_id = entry.periodic_id;
        entries_.push(std::move(next));
      }
      continue;
    }
    ++fired_;
    if (flushed) ++flushed_fires_;
    lock.unlock();
    entry.cb(flushed);
    lock.lock();
  }
}

}  // namespace parma::async

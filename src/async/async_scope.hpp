// parma::async::AsyncScope -- ownership of in-flight task chains.
//
// Every chain the server launches is spawned into one scope; drain/shutdown
// collapses to a single join(). join() first flushes the attached TimerQueue
// so chains parked in retry backoff (including breaker half-open probes
// waiting behind one) complete promptly instead of holding shutdown hostage
// for the full backoff, then blocks until every spawned chain has completed.
// This ordering -- expedite timers *before* waiting -- is the fix for the
// drain/half-open race: a probe can no longer be left pending after the
// workers are gone.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "async/task.hpp"
#include "async/timer_queue.hpp"

namespace parma::async {

class AsyncScope {
 public:
  AsyncScope() = default;
  /// The scope must be empty (joined) at destruction; enforced.
  ~AsyncScope();

  AsyncScope(const AsyncScope&) = delete;
  AsyncScope& operator=(const AsyncScope&) = delete;

  /// Timers to flush at join(). Optional; set before the first join().
  void attach_timers(TimerQueue& timers);

  /// Starts `task` immediately, tracked until its chain completes. The
  /// chain's errors are swallowed at the scope boundary (chains run for
  /// effect; the serving layer completes promises inside the chain).
  void spawn(Task<Unit> task);

  /// Flushes attached timers, then blocks until in_flight() == 0. Safe to
  /// call repeatedly; spawns racing a join are waited for too.
  void join();

  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::uint64_t spawned() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::uint64_t spawned_ = 0;
  TimerQueue* timers_ = nullptr;
};

}  // namespace parma::async

#include "async/async_scope.hpp"

#include <utility>

#include "common/require.hpp"

namespace parma::async {

AsyncScope::~AsyncScope() {
  std::lock_guard lock(mu_);
  PARMA_REQUIRE(in_flight_ == 0, "AsyncScope destroyed with chains in flight; join() first");
}

void AsyncScope::attach_timers(TimerQueue& timers) {
  std::lock_guard lock(mu_);
  timers_ = &timers;
}

void AsyncScope::spawn(Task<Unit> task) {
  {
    std::lock_guard lock(mu_);
    ++in_flight_;
    ++spawned_;
  }
  std::move(task).start([this](Try<Unit>) {
    // Notify under the lock: join() may return (and the scope be destroyed)
    // the instant in_flight_ hits zero, so the cv access must be ordered
    // before the destructor's mutex acquisition.
    std::lock_guard lock(mu_);
    if (--in_flight_ == 0) idle_.notify_all();
  });
}

void AsyncScope::join() {
  TimerQueue* timers = nullptr;
  {
    std::lock_guard lock(mu_);
    timers = timers_;
  }
  // Expedite pending (and future) backoff waits *before* waiting: a chain
  // parked on a timer holds in_flight_ and would otherwise stall the join
  // for its full backoff.
  if (timers != nullptr) timers->flush();
  std::unique_lock lock(mu_);
  idle_.wait(lock, [&] { return in_flight_ == 0; });
}

std::size_t AsyncScope::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

std::uint64_t AsyncScope::spawned() const {
  std::lock_guard lock(mu_);
  return spawned_;
}

}  // namespace parma::async

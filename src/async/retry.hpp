// retry_with_backoff -- re-run a task factory until it succeeds, with timed
// waits between attempts parked on a TimerQueue instead of a blocked thread.
//
// The adaptor knows nothing about why an outcome is retryable or how long to
// wait: classification, backoff schedule, and the two veto hooks are policy
// injected by the caller. The serving layer uses the hooks to reproduce its
// historical semantics exactly -- before_wait vetoes when the request's
// deadline would pass during the backoff, after_wait vetoes when the request
// was cancelled while waiting -- mutating the Try in place so the final
// outcome carries the same status and message the blocking loop produced.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <utility>

#include "async/task.hpp"
#include "async/timer_queue.hpp"

namespace parma::async {

template <typename T>
struct RetryOptions {
  /// Total attempts, including the first (>= 1).
  int max_attempts = 1;

  /// True when this outcome is worth another attempt. Unset: never retry.
  std::function<bool(const Try<T>&)> should_retry;

  /// Backoff before attempt `next_attempt` (2-based: the wait preceding the
  /// second attempt is backoff_for(2)). Unset: zero delay.
  std::function<std::chrono::microseconds(int next_attempt)> backoff_for;

  /// Called before parking the wait; return false to give up now with the
  /// current (possibly mutated) outcome. E.g. "deadline would pass during
  /// retry backoff".
  std::function<bool(int next_attempt, std::chrono::microseconds delay, Try<T>&)>
      before_wait;

  /// Called after the wait fires (naturally or flushed by drain); return
  /// false to give up with the current (possibly mutated) outcome. E.g.
  /// "cancelled between attempts".
  std::function<bool(int next_attempt, Try<T>&)> after_wait;
};

/// `factory(attempt)` builds the chain for one attempt (attempt is 1-based).
/// The composed task completes with the last attempt's outcome. An attempt
/// that completes with an *exception* is terminal -- stage code is expected
/// to fold failures into the value type (the serving layer's AttemptOutcome),
/// and an escaped exception means a bug, not a retryable fault.
template <typename T>
Task<T> retry_with_backoff(std::function<Task<T>(int attempt)> factory,
                           RetryOptions<T> options, TimerQueue& timers) {
  auto opts = std::make_shared<RetryOptions<T>>(std::move(options));
  auto make = std::make_shared<std::function<Task<T>(int)>>(std::move(factory));
  return Task<T>([opts, make, timers = &timers](typename Task<T>::Continuation c) {
    struct Runner : std::enable_shared_from_this<Runner> {
      std::shared_ptr<RetryOptions<T>> opts;
      std::shared_ptr<std::function<Task<T>(int)>> make;
      TimerQueue* timers;
      typename Task<T>::Continuation done;
      int attempt = 0;

      void launch() {
        ++attempt;
        auto self = this->shared_from_this();
        Task<T> t = (*make)(attempt);
        std::move(t).start([self](Try<T> outcome) { self->landed(std::move(outcome)); });
      }

      void landed(Try<T> outcome) {
        if (!outcome.ok() || attempt >= opts->max_attempts || !opts->should_retry ||
            !opts->should_retry(outcome)) {
          done(std::move(outcome));
          return;
        }
        const int next = attempt + 1;
        const std::chrono::microseconds delay =
            opts->backoff_for ? opts->backoff_for(next) : std::chrono::microseconds{0};
        if (opts->before_wait && !opts->before_wait(next, delay, outcome)) {
          done(std::move(outcome));
          return;
        }
        auto self = this->shared_from_this();
        auto boxed = std::make_shared<Try<T>>(std::move(outcome));
        timers->schedule_after(delay, [self, boxed](bool /*flushed*/) {
          if (self->opts->after_wait && !self->opts->after_wait(self->attempt + 1, *boxed)) {
            self->done(std::move(*boxed));
            return;
          }
          self->launch();
        });
      }
    };
    auto runner = std::make_shared<Runner>();
    runner->opts = opts;
    runner->make = make;
    runner->timers = timers;
    runner->done = std::move(c);
    runner->launch();
  });
}

}  // namespace parma::async

// with_breaker -- gate a task behind an admission check and report its
// outcome back, without this layer knowing what a circuit breaker is.
//
// The hooks are deliberately shapeless: `admit` decides whether the work may
// start (and the serving layer's implementation is where half-open probe
// accounting lives), `rejected` fabricates the fast-fail outcome, and
// `classify` + `report` feed the result back. serve::Server binds these to
// its per-shape BreakerBoard; tests bind them to counters.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "async/task.hpp"

namespace parma::async {

enum class BreakerOutcome {
  kSuccess,  ///< counts toward closing the breaker
  kFailure,  ///< counts toward opening it
  kNeutral,  ///< ignored (client errors, cancellations, ...)
};

template <typename T>
struct BreakerHooks {
  /// May the wrapped task start? Unset admits everything.
  std::function<bool()> admit;

  /// Fast-fail outcome when admit() refuses. Must be set when admit is.
  std::function<Try<T>()> rejected;

  /// Maps the wrapped task's outcome to a breaker signal. Unset: no report.
  std::function<BreakerOutcome(const Try<T>&)> classify;

  /// Receives the classified outcome. Unset: no report.
  std::function<void(BreakerOutcome)> report;
};

template <typename T>
Task<T> with_breaker(Task<T> task, BreakerHooks<T> hooks) {
  auto boxed = std::make_shared<Task<T>>(std::move(task));
  auto h = std::make_shared<BreakerHooks<T>>(std::move(hooks));
  return Task<T>([boxed, h](typename Task<T>::Continuation c) {
    if (h->admit && !h->admit()) {
      c(h->rejected());
      return;
    }
    std::move(*boxed).start([h, c = std::move(c)](Try<T> outcome) mutable {
      if (h->classify && h->report) h->report(h->classify(outcome));
      c(std::move(outcome));
    });
  });
}

}  // namespace parma::async

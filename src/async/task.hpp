// parma::async -- a minimal sender/receiver continuation core.
//
// A Task<T> is a cold, move-only sender: a computation that, once started,
// completes exactly one Continuation with a Try<T> (value or exception).
// Nothing runs until start(); composition builds a description of the chain,
// so the serving pipeline can assemble admit -> form -> solve -> reconstruct
// as data and hand it to a scheduler stage by stage instead of occupying a
// worker thread end to end.
//
//   async::Scheduler pool(4);
//   auto work = async::schedule(pool)                 // hop onto the pool
//                   .then([] { return load(); })      // value transform
//                   .via(pool)                        // hop again
//                   .then([](Data d) { return solve(d); });
//   async::Try<Result> r = async::sync_wait(std::move(work));
//
// Combinators here: just, schedule, then, via, when_all, sequence,
// sync_wait. Resilience adaptors (retry_with_backoff, with_breaker,
// with_deadline, ...) live in retry.hpp / breaker.hpp / adaptors.hpp; the
// in-flight ownership scope is async_scope.hpp.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "async/scheduler.hpp"
#include "common/types.hpp"

namespace parma::async {

/// Regular void: the value type of tasks run purely for effect.
struct Unit {};

/// Completion outcome of a task: exactly one of a value or an exception.
template <typename T>
class Try {
 public:
  Try() = default;

  static Try from_value(T value) {
    Try t;
    t.value_ = std::move(value);
    return t;
  }
  static Try from_error(std::exception_ptr error) {
    Try t;
    t.error_ = std::move(error);
    return t;
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] std::exception_ptr exception() const { return error_; }

  /// The value; rethrows when this Try carries an exception.
  T& get() {
    if (error_) std::rethrow_exception(error_);
    return *value_;
  }
  const T& get() const {
    if (error_) std::rethrow_exception(error_);
    return *value_;
  }

 private:
  std::optional<T> value_;
  std::exception_ptr error_;
};

namespace detail {

/// Runs f with the completed value: f(), f(value), f(Try) -- whichever the
/// callable accepts (checked in that order of specificity: Try first).
template <typename F, typename T>
decltype(auto) invoke_stage(F& f, Try<T>& t) {
  if constexpr (std::is_invocable_v<F, Try<T>&&>) {
    return f(std::move(t));
  } else if constexpr (std::is_invocable_v<F, T&&>) {
    return f(std::move(t.get()));
  } else {
    static_assert(std::is_invocable_v<F>, "then() continuation must accept the task value, a Try, or nothing");
    return f();
  }
}

template <typename F, typename T>
struct stage_result {
  using raw = decltype(invoke_stage(std::declval<F&>(), std::declval<Try<T>&>()));
  using type = std::conditional_t<std::is_void_v<raw>, Unit, std::decay_t<raw>>;
};

}  // namespace detail

template <typename T>
class Task {
 public:
  using Continuation = std::function<void(Try<T>)>;
  using StartFn = std::function<void(Continuation)>;

  Task() = default;
  explicit Task(StartFn start) : start_(std::move(start)) {}

  Task(Task&&) noexcept = default;
  Task& operator=(Task&&) noexcept = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  [[nodiscard]] bool valid() const { return static_cast<bool>(start_); }

  /// Starts the computation; `c` is invoked exactly once, on whatever thread
  /// the chain completes on. Consumes the task.
  void start(Continuation c) && {
    StartFn s = std::move(start_);
    s(std::move(c));
  }

  /// Value transform: runs f with this task's value on the completion
  /// thread. An upstream error skips f (unless f accepts the Try itself);
  /// an exception thrown by f becomes the downstream error.
  template <typename F>
  auto then(F f) && -> Task<typename detail::stage_result<F, T>::type> {
    using U = typename detail::stage_result<F, T>::type;
    using RawU = typename detail::stage_result<F, T>::raw;
    return Task<U>([prev = std::move(start_), f = std::move(f)](
                       typename Task<U>::Continuation c) mutable {
      prev([f = std::move(f), c = std::move(c)](Try<T> t) mutable {
        // Error short-circuit, unless f wants the Try itself.
        if constexpr (!std::is_invocable_v<F, Try<T>&&>) {
          if (!t.ok()) {
            c(Try<U>::from_error(t.exception()));
            return;
          }
        }
        try {
          if constexpr (std::is_void_v<RawU>) {
            detail::invoke_stage(f, t);
            c(Try<U>::from_value(Unit{}));
          } else {
            c(Try<U>::from_value(detail::invoke_stage(f, t)));
          }
        } catch (...) {
          c(Try<U>::from_error(std::current_exception()));
        }
      });
    });
  }

  /// Reschedules the continuation onto `scheduler`: whatever follows runs as
  /// a task on its pool instead of inline on the completing thread.
  Task<T> via(Scheduler& scheduler) && {
    return Task<T>([prev = std::move(start_), s = &scheduler](Continuation c) mutable {
      prev([s, c = std::move(c)](Try<T> t) mutable {
        auto shared = std::make_shared<std::pair<Continuation, Try<T>>>(std::move(c),
                                                                        std::move(t));
        s->post([shared] { shared->first(std::move(shared->second)); });
      });
    });
  }

 private:
  StartFn start_;
};

/// An already-completed task carrying `value`.
template <typename T>
Task<std::decay_t<T>> just(T&& value) {
  using D = std::decay_t<T>;
  auto boxed = std::make_shared<D>(std::forward<T>(value));
  return Task<D>([boxed](typename Task<D>::Continuation c) {
    c(Try<D>::from_value(std::move(*boxed)));
  });
}

inline Task<Unit> just() { return just(Unit{}); }

/// A task that completes (with Unit) on one of `scheduler`'s pool threads.
inline Task<Unit> schedule(Scheduler& scheduler) {
  return Task<Unit>([s = &scheduler](Task<Unit>::Continuation c) {
    auto shared = std::make_shared<Task<Unit>::Continuation>(std::move(c));
    s->post([shared] { (*shared)(Try<Unit>::from_value(Unit{})); });
  });
}

/// Starts every task; completes with all outcomes (in input order) once the
/// last one finishes. Individual failures do not cancel siblings -- each
/// slot carries its own Try. An empty input completes immediately.
template <typename T>
Task<std::vector<Try<T>>> when_all(std::vector<Task<T>> tasks) {
  using Batch = std::vector<Try<T>>;
  auto boxed = std::make_shared<std::vector<Task<T>>>(std::move(tasks));
  return Task<Batch>([boxed](typename Task<Batch>::Continuation c) {
    const std::size_t n = boxed->size();
    if (n == 0) {
      c(Try<Batch>::from_value(Batch{}));
      return;
    }
    struct State {
      std::mutex mu;
      Batch results;
      std::size_t remaining;
      typename Task<Batch>::Continuation done;
    };
    auto state = std::make_shared<State>();
    state->results.resize(n);
    state->remaining = n;
    state->done = std::move(c);
    for (std::size_t i = 0; i < n; ++i) {
      std::move((*boxed)[i]).start([state, i](Try<T> t) {
        bool last = false;
        {
          std::lock_guard lock(state->mu);
          state->results[i] = std::move(t);
          last = (--state->remaining == 0);
        }
        if (last) state->done(Try<Batch>::from_value(std::move(state->results)));
      });
    }
  });
}

/// Runs the step factories strictly one after another (step k+1 is created
/// only after step k's chain completed). Errors in one step do not stop the
/// later steps -- the serving pipeline relies on one request's failure never
/// poisoning the rest of its batch.
inline Task<Unit> sequence(std::vector<std::function<Task<Unit>()>> steps) {
  auto boxed =
      std::make_shared<std::vector<std::function<Task<Unit>()>>>(std::move(steps));
  return Task<Unit>([boxed](Task<Unit>::Continuation c) {
    struct Runner : std::enable_shared_from_this<Runner> {
      std::vector<std::function<Task<Unit>()>> steps;
      std::size_t next = 0;
      Task<Unit>::Continuation done;
      void run() {
        if (next >= steps.size()) {
          done(Try<Unit>::from_value(Unit{}));
          return;
        }
        auto self = this->shared_from_this();
        Task<Unit> step = steps[next++]();
        std::move(step).start([self](Try<Unit>) { self->run(); });
      }
    };
    auto runner = std::make_shared<Runner>();
    runner->steps = std::move(*boxed);
    runner->done = std::move(c);
    runner->run();
  });
}

/// Starts the task and blocks the calling thread until it completes.
template <typename T>
Try<T> sync_wait(Task<T> task) {
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Try<T>> result;
  };
  auto state = std::make_shared<State>();
  std::move(task).start([state](Try<T> t) {
    {
      std::lock_guard lock(state->mu);
      state->result = std::move(t);
    }
    state->cv.notify_all();
  });
  std::unique_lock lock(state->mu);
  state->cv.wait(lock, [&] { return state->result.has_value(); });
  return std::move(*state->result);
}

}  // namespace parma::async

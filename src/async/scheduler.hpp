// parma::async::Scheduler -- the execution context of the continuation core.
//
// A fixed pool of threads draining a FIFO of posted continuations. Unlike
// exec::Executor (bulk data-parallel loops that block the submitter), the
// Scheduler never blocks anybody: post() enqueues and returns, which is what
// lets pipeline stages of different batches interleave on the same threads.
//
// Shutdown contract: stop() finishes everything already posted, then joins.
// A post() after stop() runs the continuation inline on the calling thread
// -- a late continuation is never silently dropped (dropping one would leave
// its chain, and anything joined on it, hanging forever).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace parma::async {

class Scheduler {
 public:
  /// Spawns `threads` pool threads (>= 1).
  explicit Scheduler(Index threads);

  /// stop() + join.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a continuation for the pool. After stop(), runs it inline.
  void post(std::function<void()> task);

  /// Drains every task posted so far, then joins the pool. Idempotent.
  void stop();

  [[nodiscard]] Index workers() const { return static_cast<Index>(threads_.size()); }

  /// Tasks executed since construction (diagnostics).
  [[nodiscard]] std::uint64_t executed() const;

 private:
  void run();

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  std::uint64_t executed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace parma::async

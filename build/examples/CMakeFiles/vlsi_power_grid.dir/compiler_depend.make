# Empty compiler generated dependencies file for vlsi_power_grid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vlsi_power_grid.dir/vlsi_power_grid.cpp.o"
  "CMakeFiles/vlsi_power_grid.dir/vlsi_power_grid.cpp.o.d"
  "vlsi_power_grid"
  "vlsi_power_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsi_power_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

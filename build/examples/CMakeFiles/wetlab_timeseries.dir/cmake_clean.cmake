file(REMOVE_RECURSE
  "CMakeFiles/wetlab_timeseries.dir/wetlab_timeseries.cpp.o"
  "CMakeFiles/wetlab_timeseries.dir/wetlab_timeseries.cpp.o.d"
  "wetlab_timeseries"
  "wetlab_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wetlab_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wetlab_timeseries.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for train_estimator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/train_estimator.dir/train_estimator.cpp.o"
  "CMakeFiles/train_estimator.dir/train_estimator.cpp.o.d"
  "train_estimator"
  "train_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

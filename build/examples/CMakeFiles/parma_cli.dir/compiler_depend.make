# Empty compiler generated dependencies file for parma_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/parma_cli.dir/parma_cli.cpp.o"
  "CMakeFiles/parma_cli.dir/parma_cli.cpp.o.d"
  "parma_cli"
  "parma_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cluster_parametrize.
# This may be replaced when dependencies are built.

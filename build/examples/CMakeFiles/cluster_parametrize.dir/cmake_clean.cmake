file(REMOVE_RECURSE
  "CMakeFiles/cluster_parametrize.dir/cluster_parametrize.cpp.o"
  "CMakeFiles/cluster_parametrize.dir/cluster_parametrize.cpp.o.d"
  "cluster_parametrize"
  "cluster_parametrize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_parametrize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

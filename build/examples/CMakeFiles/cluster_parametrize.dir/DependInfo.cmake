
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_parametrize.cpp" "examples/CMakeFiles/cluster_parametrize.dir/cluster_parametrize.cpp.o" "gcc" "examples/CMakeFiles/cluster_parametrize.dir/cluster_parametrize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/parma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/parma_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/manifold/CMakeFiles/parma_manifold.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/parma_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/parma_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parma_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/equations/CMakeFiles/parma_equations.dir/DependInfo.cmake"
  "/root/repo/build/src/mea/CMakeFiles/parma_mea.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/parma_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/parma_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/parma_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

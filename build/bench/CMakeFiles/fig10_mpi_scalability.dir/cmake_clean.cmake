file(REMOVE_RECURSE
  "CMakeFiles/fig10_mpi_scalability.dir/fig10_mpi_scalability.cpp.o"
  "CMakeFiles/fig10_mpi_scalability.dir/fig10_mpi_scalability.cpp.o.d"
  "fig10_mpi_scalability"
  "fig10_mpi_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mpi_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

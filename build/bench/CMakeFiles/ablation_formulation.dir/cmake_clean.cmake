file(REMOVE_RECURSE
  "CMakeFiles/ablation_formulation.dir/ablation_formulation.cpp.o"
  "CMakeFiles/ablation_formulation.dir/ablation_formulation.cpp.o.d"
  "ablation_formulation"
  "ablation_formulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

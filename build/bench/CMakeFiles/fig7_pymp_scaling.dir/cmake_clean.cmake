file(REMOVE_RECURSE
  "CMakeFiles/fig7_pymp_scaling.dir/fig7_pymp_scaling.cpp.o"
  "CMakeFiles/fig7_pymp_scaling.dir/fig7_pymp_scaling.cpp.o.d"
  "fig7_pymp_scaling"
  "fig7_pymp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pymp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_pymp_scaling.
# This may be replaced when dependencies are built.

# Empty dependencies file for headline_speedup.
# This may be replaced when dependencies are built.

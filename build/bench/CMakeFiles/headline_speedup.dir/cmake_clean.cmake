file(REMOVE_RECURSE
  "CMakeFiles/headline_speedup.dir/headline_speedup.cpp.o"
  "CMakeFiles/headline_speedup.dir/headline_speedup.cpp.o.d"
  "headline_speedup"
  "headline_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

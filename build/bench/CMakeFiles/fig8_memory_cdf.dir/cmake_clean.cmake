file(REMOVE_RECURSE
  "CMakeFiles/fig8_memory_cdf.dir/fig8_memory_cdf.cpp.o"
  "CMakeFiles/fig8_memory_cdf.dir/fig8_memory_cdf.cpp.o.d"
  "fig8_memory_cdf"
  "fig8_memory_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memory_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

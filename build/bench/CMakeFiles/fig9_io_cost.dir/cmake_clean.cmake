file(REMOVE_RECURSE
  "CMakeFiles/fig9_io_cost.dir/fig9_io_cost.cpp.o"
  "CMakeFiles/fig9_io_cost.dir/fig9_io_cost.cpp.o.d"
  "fig9_io_cost"
  "fig9_io_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_io_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_mea.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ann.dir/test_ann.cpp.o"
  "CMakeFiles/test_ann.dir/test_ann.cpp.o.d"
  "test_ann"
  "test_ann.pdb"
  "test_ann[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ann[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_classical[1]_include.cmake")
include("/root/repo/build/tests/test_heterogeneous[1]_include.cmake")
include("/root/repo/build/tests/test_manifold[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_mea[1]_include.cmake")
include("/root/repo/build/tests/test_equations[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/parma_parallel.dir/parallel_for.cpp.o"
  "CMakeFiles/parma_parallel.dir/parallel_for.cpp.o.d"
  "CMakeFiles/parma_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/parma_parallel.dir/thread_pool.cpp.o.d"
  "CMakeFiles/parma_parallel.dir/virtual_scheduler.cpp.o"
  "CMakeFiles/parma_parallel.dir/virtual_scheduler.cpp.o.d"
  "CMakeFiles/parma_parallel.dir/work_stealing_pool.cpp.o"
  "CMakeFiles/parma_parallel.dir/work_stealing_pool.cpp.o.d"
  "libparma_parallel.a"
  "libparma_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libparma_parallel.a"
)

# Empty dependencies file for parma_parallel.
# This may be replaced when dependencies are built.

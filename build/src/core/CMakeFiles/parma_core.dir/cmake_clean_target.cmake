file(REMOVE_RECURSE
  "libparma_core.a"
)

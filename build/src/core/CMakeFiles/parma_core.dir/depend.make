# Empty dependencies file for parma_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/parma_core.dir/engine.cpp.o"
  "CMakeFiles/parma_core.dir/engine.cpp.o.d"
  "CMakeFiles/parma_core.dir/strategy.cpp.o"
  "CMakeFiles/parma_core.dir/strategy.cpp.o.d"
  "libparma_core.a"
  "libparma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/equations/binary_io.cpp" "src/equations/CMakeFiles/parma_equations.dir/binary_io.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/binary_io.cpp.o.d"
  "/root/repo/src/equations/equation.cpp" "src/equations/CMakeFiles/parma_equations.dir/equation.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/equation.cpp.o.d"
  "/root/repo/src/equations/generator.cpp" "src/equations/CMakeFiles/parma_equations.dir/generator.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/generator.cpp.o.d"
  "/root/repo/src/equations/layout.cpp" "src/equations/CMakeFiles/parma_equations.dir/layout.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/layout.cpp.o.d"
  "/root/repo/src/equations/pair_system.cpp" "src/equations/CMakeFiles/parma_equations.dir/pair_system.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/pair_system.cpp.o.d"
  "/root/repo/src/equations/residual.cpp" "src/equations/CMakeFiles/parma_equations.dir/residual.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/residual.cpp.o.d"
  "/root/repo/src/equations/serializer.cpp" "src/equations/CMakeFiles/parma_equations.dir/serializer.cpp.o" "gcc" "src/equations/CMakeFiles/parma_equations.dir/serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/parma_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/mea/CMakeFiles/parma_mea.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/parma_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/parma_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

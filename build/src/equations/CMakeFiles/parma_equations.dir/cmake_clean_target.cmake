file(REMOVE_RECURSE
  "libparma_equations.a"
)

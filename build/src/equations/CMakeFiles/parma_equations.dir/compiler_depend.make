# Empty compiler generated dependencies file for parma_equations.
# This may be replaced when dependencies are built.

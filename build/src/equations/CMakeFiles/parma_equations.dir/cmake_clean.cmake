file(REMOVE_RECURSE
  "CMakeFiles/parma_equations.dir/binary_io.cpp.o"
  "CMakeFiles/parma_equations.dir/binary_io.cpp.o.d"
  "CMakeFiles/parma_equations.dir/equation.cpp.o"
  "CMakeFiles/parma_equations.dir/equation.cpp.o.d"
  "CMakeFiles/parma_equations.dir/generator.cpp.o"
  "CMakeFiles/parma_equations.dir/generator.cpp.o.d"
  "CMakeFiles/parma_equations.dir/layout.cpp.o"
  "CMakeFiles/parma_equations.dir/layout.cpp.o.d"
  "CMakeFiles/parma_equations.dir/pair_system.cpp.o"
  "CMakeFiles/parma_equations.dir/pair_system.cpp.o.d"
  "CMakeFiles/parma_equations.dir/residual.cpp.o"
  "CMakeFiles/parma_equations.dir/residual.cpp.o.d"
  "CMakeFiles/parma_equations.dir/serializer.cpp.o"
  "CMakeFiles/parma_equations.dir/serializer.cpp.o.d"
  "libparma_equations.a"
  "libparma_equations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_equations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

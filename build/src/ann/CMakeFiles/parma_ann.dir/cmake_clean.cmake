file(REMOVE_RECURSE
  "CMakeFiles/parma_ann.dir/dataset.cpp.o"
  "CMakeFiles/parma_ann.dir/dataset.cpp.o.d"
  "CMakeFiles/parma_ann.dir/mlp.cpp.o"
  "CMakeFiles/parma_ann.dir/mlp.cpp.o.d"
  "CMakeFiles/parma_ann.dir/trainer.cpp.o"
  "CMakeFiles/parma_ann.dir/trainer.cpp.o.d"
  "libparma_ann.a"
  "libparma_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libparma_ann.a"
)

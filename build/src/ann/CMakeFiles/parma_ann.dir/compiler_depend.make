# Empty compiler generated dependencies file for parma_ann.
# This may be replaced when dependencies are built.

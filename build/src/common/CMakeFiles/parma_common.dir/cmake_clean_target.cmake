file(REMOVE_RECURSE
  "libparma_common.a"
)

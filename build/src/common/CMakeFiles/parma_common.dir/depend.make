# Empty dependencies file for parma_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/parma_common.dir/logging.cpp.o"
  "CMakeFiles/parma_common.dir/logging.cpp.o.d"
  "CMakeFiles/parma_common.dir/memory_sampler.cpp.o"
  "CMakeFiles/parma_common.dir/memory_sampler.cpp.o.d"
  "CMakeFiles/parma_common.dir/rng.cpp.o"
  "CMakeFiles/parma_common.dir/rng.cpp.o.d"
  "CMakeFiles/parma_common.dir/string_util.cpp.o"
  "CMakeFiles/parma_common.dir/string_util.cpp.o.d"
  "CMakeFiles/parma_common.dir/table.cpp.o"
  "CMakeFiles/parma_common.dir/table.cpp.o.d"
  "libparma_common.a"
  "libparma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

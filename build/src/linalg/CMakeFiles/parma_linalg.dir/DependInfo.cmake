
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cpp" "src/linalg/CMakeFiles/parma_linalg.dir/dense_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/parma_linalg.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/dense_solve.cpp" "src/linalg/CMakeFiles/parma_linalg.dir/dense_solve.cpp.o" "gcc" "src/linalg/CMakeFiles/parma_linalg.dir/dense_solve.cpp.o.d"
  "/root/repo/src/linalg/iterative.cpp" "src/linalg/CMakeFiles/parma_linalg.dir/iterative.cpp.o" "gcc" "src/linalg/CMakeFiles/parma_linalg.dir/iterative.cpp.o.d"
  "/root/repo/src/linalg/laplacian.cpp" "src/linalg/CMakeFiles/parma_linalg.dir/laplacian.cpp.o" "gcc" "src/linalg/CMakeFiles/parma_linalg.dir/laplacian.cpp.o.d"
  "/root/repo/src/linalg/sparse_matrix.cpp" "src/linalg/CMakeFiles/parma_linalg.dir/sparse_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/parma_linalg.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/parma_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/parma_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libparma_linalg.a"
)

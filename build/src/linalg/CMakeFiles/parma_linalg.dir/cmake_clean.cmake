file(REMOVE_RECURSE
  "CMakeFiles/parma_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/parma_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/parma_linalg.dir/dense_solve.cpp.o"
  "CMakeFiles/parma_linalg.dir/dense_solve.cpp.o.d"
  "CMakeFiles/parma_linalg.dir/iterative.cpp.o"
  "CMakeFiles/parma_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/parma_linalg.dir/laplacian.cpp.o"
  "CMakeFiles/parma_linalg.dir/laplacian.cpp.o.d"
  "CMakeFiles/parma_linalg.dir/sparse_matrix.cpp.o"
  "CMakeFiles/parma_linalg.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/parma_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/parma_linalg.dir/vector_ops.cpp.o.d"
  "libparma_linalg.a"
  "libparma_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for parma_linalg.
# This may be replaced when dependencies are built.

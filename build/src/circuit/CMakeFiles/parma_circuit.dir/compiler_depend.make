# Empty compiler generated dependencies file for parma_circuit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libparma_circuit.a"
)

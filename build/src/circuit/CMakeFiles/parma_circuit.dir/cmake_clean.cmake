file(REMOVE_RECURSE
  "CMakeFiles/parma_circuit.dir/crossbar.cpp.o"
  "CMakeFiles/parma_circuit.dir/crossbar.cpp.o.d"
  "CMakeFiles/parma_circuit.dir/kirchhoff.cpp.o"
  "CMakeFiles/parma_circuit.dir/kirchhoff.cpp.o.d"
  "CMakeFiles/parma_circuit.dir/mna.cpp.o"
  "CMakeFiles/parma_circuit.dir/mna.cpp.o.d"
  "CMakeFiles/parma_circuit.dir/network.cpp.o"
  "CMakeFiles/parma_circuit.dir/network.cpp.o.d"
  "CMakeFiles/parma_circuit.dir/path_enumeration.cpp.o"
  "CMakeFiles/parma_circuit.dir/path_enumeration.cpp.o.d"
  "libparma_circuit.a"
  "libparma_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

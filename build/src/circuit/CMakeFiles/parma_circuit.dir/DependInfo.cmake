
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/crossbar.cpp" "src/circuit/CMakeFiles/parma_circuit.dir/crossbar.cpp.o" "gcc" "src/circuit/CMakeFiles/parma_circuit.dir/crossbar.cpp.o.d"
  "/root/repo/src/circuit/kirchhoff.cpp" "src/circuit/CMakeFiles/parma_circuit.dir/kirchhoff.cpp.o" "gcc" "src/circuit/CMakeFiles/parma_circuit.dir/kirchhoff.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/circuit/CMakeFiles/parma_circuit.dir/mna.cpp.o" "gcc" "src/circuit/CMakeFiles/parma_circuit.dir/mna.cpp.o.d"
  "/root/repo/src/circuit/network.cpp" "src/circuit/CMakeFiles/parma_circuit.dir/network.cpp.o" "gcc" "src/circuit/CMakeFiles/parma_circuit.dir/network.cpp.o.d"
  "/root/repo/src/circuit/path_enumeration.cpp" "src/circuit/CMakeFiles/parma_circuit.dir/path_enumeration.cpp.o" "gcc" "src/circuit/CMakeFiles/parma_circuit.dir/path_enumeration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/parma_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/parma_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

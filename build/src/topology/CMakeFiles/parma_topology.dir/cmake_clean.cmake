file(REMOVE_RECURSE
  "CMakeFiles/parma_topology.dir/boundary.cpp.o"
  "CMakeFiles/parma_topology.dir/boundary.cpp.o.d"
  "CMakeFiles/parma_topology.dir/cycle_basis.cpp.o"
  "CMakeFiles/parma_topology.dir/cycle_basis.cpp.o.d"
  "CMakeFiles/parma_topology.dir/gf2_matrix.cpp.o"
  "CMakeFiles/parma_topology.dir/gf2_matrix.cpp.o.d"
  "CMakeFiles/parma_topology.dir/grid_complex.cpp.o"
  "CMakeFiles/parma_topology.dir/grid_complex.cpp.o.d"
  "CMakeFiles/parma_topology.dir/simplex.cpp.o"
  "CMakeFiles/parma_topology.dir/simplex.cpp.o.d"
  "CMakeFiles/parma_topology.dir/simplicial_complex.cpp.o"
  "CMakeFiles/parma_topology.dir/simplicial_complex.cpp.o.d"
  "libparma_topology.a"
  "libparma_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libparma_topology.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/boundary.cpp" "src/topology/CMakeFiles/parma_topology.dir/boundary.cpp.o" "gcc" "src/topology/CMakeFiles/parma_topology.dir/boundary.cpp.o.d"
  "/root/repo/src/topology/cycle_basis.cpp" "src/topology/CMakeFiles/parma_topology.dir/cycle_basis.cpp.o" "gcc" "src/topology/CMakeFiles/parma_topology.dir/cycle_basis.cpp.o.d"
  "/root/repo/src/topology/gf2_matrix.cpp" "src/topology/CMakeFiles/parma_topology.dir/gf2_matrix.cpp.o" "gcc" "src/topology/CMakeFiles/parma_topology.dir/gf2_matrix.cpp.o.d"
  "/root/repo/src/topology/grid_complex.cpp" "src/topology/CMakeFiles/parma_topology.dir/grid_complex.cpp.o" "gcc" "src/topology/CMakeFiles/parma_topology.dir/grid_complex.cpp.o.d"
  "/root/repo/src/topology/simplex.cpp" "src/topology/CMakeFiles/parma_topology.dir/simplex.cpp.o" "gcc" "src/topology/CMakeFiles/parma_topology.dir/simplex.cpp.o.d"
  "/root/repo/src/topology/simplicial_complex.cpp" "src/topology/CMakeFiles/parma_topology.dir/simplicial_complex.cpp.o" "gcc" "src/topology/CMakeFiles/parma_topology.dir/simplicial_complex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for parma_topology.
# This may be replaced when dependencies are built.

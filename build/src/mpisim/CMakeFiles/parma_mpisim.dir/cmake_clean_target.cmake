file(REMOVE_RECURSE
  "libparma_mpisim.a"
)

# Empty dependencies file for parma_mpisim.
# This may be replaced when dependencies are built.

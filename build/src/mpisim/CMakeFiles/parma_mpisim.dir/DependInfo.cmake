
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/cluster_model.cpp" "src/mpisim/CMakeFiles/parma_mpisim.dir/cluster_model.cpp.o" "gcc" "src/mpisim/CMakeFiles/parma_mpisim.dir/cluster_model.cpp.o.d"
  "/root/repo/src/mpisim/communicator.cpp" "src/mpisim/CMakeFiles/parma_mpisim.dir/communicator.cpp.o" "gcc" "src/mpisim/CMakeFiles/parma_mpisim.dir/communicator.cpp.o.d"
  "/root/repo/src/mpisim/heterogeneous.cpp" "src/mpisim/CMakeFiles/parma_mpisim.dir/heterogeneous.cpp.o" "gcc" "src/mpisim/CMakeFiles/parma_mpisim.dir/heterogeneous.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parma_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/parma_mpisim.dir/cluster_model.cpp.o"
  "CMakeFiles/parma_mpisim.dir/cluster_model.cpp.o.d"
  "CMakeFiles/parma_mpisim.dir/communicator.cpp.o"
  "CMakeFiles/parma_mpisim.dir/communicator.cpp.o.d"
  "CMakeFiles/parma_mpisim.dir/heterogeneous.cpp.o"
  "CMakeFiles/parma_mpisim.dir/heterogeneous.cpp.o.d"
  "libparma_mpisim.a"
  "libparma_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for parma_mea.
# This may be replaced when dependencies are built.

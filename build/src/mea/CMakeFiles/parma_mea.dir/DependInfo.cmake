
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mea/anomaly.cpp" "src/mea/CMakeFiles/parma_mea.dir/anomaly.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/anomaly.cpp.o.d"
  "/root/repo/src/mea/dataset_io.cpp" "src/mea/CMakeFiles/parma_mea.dir/dataset_io.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/dataset_io.cpp.o.d"
  "/root/repo/src/mea/device.cpp" "src/mea/CMakeFiles/parma_mea.dir/device.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/device.cpp.o.d"
  "/root/repo/src/mea/field_render.cpp" "src/mea/CMakeFiles/parma_mea.dir/field_render.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/field_render.cpp.o.d"
  "/root/repo/src/mea/generator.cpp" "src/mea/CMakeFiles/parma_mea.dir/generator.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/generator.cpp.o.d"
  "/root/repo/src/mea/measurement.cpp" "src/mea/CMakeFiles/parma_mea.dir/measurement.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/measurement.cpp.o.d"
  "/root/repo/src/mea/timeseries.cpp" "src/mea/CMakeFiles/parma_mea.dir/timeseries.cpp.o" "gcc" "src/mea/CMakeFiles/parma_mea.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/parma_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/parma_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/parma_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libparma_mea.a"
)

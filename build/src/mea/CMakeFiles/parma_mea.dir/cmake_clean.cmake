file(REMOVE_RECURSE
  "CMakeFiles/parma_mea.dir/anomaly.cpp.o"
  "CMakeFiles/parma_mea.dir/anomaly.cpp.o.d"
  "CMakeFiles/parma_mea.dir/dataset_io.cpp.o"
  "CMakeFiles/parma_mea.dir/dataset_io.cpp.o.d"
  "CMakeFiles/parma_mea.dir/device.cpp.o"
  "CMakeFiles/parma_mea.dir/device.cpp.o.d"
  "CMakeFiles/parma_mea.dir/field_render.cpp.o"
  "CMakeFiles/parma_mea.dir/field_render.cpp.o.d"
  "CMakeFiles/parma_mea.dir/generator.cpp.o"
  "CMakeFiles/parma_mea.dir/generator.cpp.o.d"
  "CMakeFiles/parma_mea.dir/measurement.cpp.o"
  "CMakeFiles/parma_mea.dir/measurement.cpp.o.d"
  "CMakeFiles/parma_mea.dir/timeseries.cpp.o"
  "CMakeFiles/parma_mea.dir/timeseries.cpp.o.d"
  "libparma_mea.a"
  "libparma_mea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_mea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

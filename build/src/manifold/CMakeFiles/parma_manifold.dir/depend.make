# Empty dependencies file for parma_manifold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libparma_manifold.a"
)

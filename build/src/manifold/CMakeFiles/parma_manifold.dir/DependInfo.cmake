
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/manifold/calculus.cpp" "src/manifold/CMakeFiles/parma_manifold.dir/calculus.cpp.o" "gcc" "src/manifold/CMakeFiles/parma_manifold.dir/calculus.cpp.o.d"
  "/root/repo/src/manifold/frames.cpp" "src/manifold/CMakeFiles/parma_manifold.dir/frames.cpp.o" "gcc" "src/manifold/CMakeFiles/parma_manifold.dir/frames.cpp.o.d"
  "/root/repo/src/manifold/grid_field.cpp" "src/manifold/CMakeFiles/parma_manifold.dir/grid_field.cpp.o" "gcc" "src/manifold/CMakeFiles/parma_manifold.dir/grid_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/parma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/parma_manifold.dir/calculus.cpp.o"
  "CMakeFiles/parma_manifold.dir/calculus.cpp.o.d"
  "CMakeFiles/parma_manifold.dir/frames.cpp.o"
  "CMakeFiles/parma_manifold.dir/frames.cpp.o.d"
  "CMakeFiles/parma_manifold.dir/grid_field.cpp.o"
  "CMakeFiles/parma_manifold.dir/grid_field.cpp.o.d"
  "libparma_manifold.a"
  "libparma_manifold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_manifold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

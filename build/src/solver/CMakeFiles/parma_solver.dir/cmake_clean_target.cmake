file(REMOVE_RECURSE
  "libparma_solver.a"
)

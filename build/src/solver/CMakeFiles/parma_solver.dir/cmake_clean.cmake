file(REMOVE_RECURSE
  "CMakeFiles/parma_solver.dir/classical.cpp.o"
  "CMakeFiles/parma_solver.dir/classical.cpp.o.d"
  "CMakeFiles/parma_solver.dir/full_system_solver.cpp.o"
  "CMakeFiles/parma_solver.dir/full_system_solver.cpp.o.d"
  "CMakeFiles/parma_solver.dir/inverse_solver.cpp.o"
  "CMakeFiles/parma_solver.dir/inverse_solver.cpp.o.d"
  "libparma_solver.a"
  "libparma_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parma_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

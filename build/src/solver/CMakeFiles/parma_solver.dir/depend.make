# Empty dependencies file for parma_solver.
# This may be replaced when dependencies are built.
